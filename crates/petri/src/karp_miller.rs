//! Karp–Miller coverability trees.
//!
//! The Karp–Miller tree finitely represents the (downward closure of the)
//! coverability set of a Petri net using ω-markings: places that can be pumped
//! unboundedly are accelerated to ω. The suite uses it as an alternative
//! coverability/boundedness procedure next to the backward algorithm of
//! [`cover`](crate::cover) — experiment E5's ablation compares the two — and
//! to detect unbounded places of non-conservative protocols.
//!
//! The tree is built on the dense engine ([`CompiledNet`]): markings are
//! flat `Vec<OmegaValue>` rows over dense place indices, fired and compared
//! with slice arithmetic, and converted to sparse [`OmegaMarking`]s only
//! once the search finishes. All counter arithmetic is *checked*
//! ([`OmegaValue::checked_add`]/[`OmegaValue::checked_sub`]): an execution
//! whose counts leave `u64` no longer panics, it marks the tree incomplete
//! and skips the offending branch.
//!
//! The long-lived admitted-markings store packs its rows with *per-place*
//! cell widths ([`RowLayout::per_place`]): ω is a per-cell max sentinel,
//! so a place accelerating to ω costs nothing, and only a *finite* count
//! colliding with its sentinel promotes that one place's width (re-encoding
//! the store) instead of widening the whole net. Branch chains stay
//! unpacked `Vec<OmegaValue>` scratch.

use crate::engine::CompiledNet;
use crate::packed::{packed_enabled, CellWidth, RowLayout};
use crate::parallel::Parallelism;
use crate::session::Completion;
use crate::PetriNet;
use pp_multiset::Multiset;
use rayon::prelude::*;
use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;

/// A marking value: a finite count or ω (unbounded).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum OmegaValue {
    /// A finite number of agents.
    Finite(u64),
    /// Unboundedly many agents (the ω of Karp–Miller acceleration).
    Omega,
}

/// Error returned when checked ω-arithmetic leaves the `u64` range.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OmegaOverflow;

impl fmt::Display for OmegaOverflow {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ω-marking arithmetic left the u64 range")
    }
}

impl std::error::Error for OmegaOverflow {}

impl OmegaValue {
    fn at_least(self, needed: u64) -> bool {
        match self {
            OmegaValue::Finite(v) => v >= needed,
            OmegaValue::Omega => true,
        }
    }

    /// Adds `count` agents, reporting overflow instead of panicking.
    ///
    /// # Errors
    ///
    /// Returns [`OmegaOverflow`] when the finite count would exceed
    /// `u64::MAX`.
    pub fn checked_add(self, count: u64) -> Result<OmegaValue, OmegaOverflow> {
        match self {
            OmegaValue::Finite(v) => v
                .checked_add(count)
                .map(OmegaValue::Finite)
                .ok_or(OmegaOverflow),
            OmegaValue::Omega => Ok(OmegaValue::Omega),
        }
    }

    /// Removes `count` agents, reporting a transient negative count
    /// instead of panicking.
    ///
    /// # Errors
    ///
    /// Returns [`OmegaOverflow`] when fewer than `count` agents are
    /// present.
    pub fn checked_sub(self, count: u64) -> Result<OmegaValue, OmegaOverflow> {
        match self {
            OmegaValue::Finite(v) => v
                .checked_sub(count)
                .map(OmegaValue::Finite)
                .ok_or(OmegaOverflow),
            OmegaValue::Omega => Ok(OmegaValue::Omega),
        }
    }
}

/// An ω-marking: a configuration whose counts may be ω.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct OmegaMarking<P: Ord> {
    values: BTreeMap<P, OmegaValue>,
}

impl<P: Clone + Ord> OmegaMarking<P> {
    /// The ω-marking corresponding to a plain configuration.
    #[must_use]
    pub fn from_config(config: &Multiset<P>) -> Self {
        OmegaMarking {
            values: config
                .iter()
                .map(|(p, c)| (p.clone(), OmegaValue::Finite(c)))
                .collect(),
        }
    }

    /// The value of `place` (zero if absent).
    #[must_use]
    pub fn get(&self, place: &P) -> OmegaValue {
        self.values
            .get(place)
            .copied()
            .unwrap_or(OmegaValue::Finite(0))
    }

    fn set(&mut self, place: P, value: OmegaValue) {
        if value == OmegaValue::Finite(0) {
            self.values.remove(&place);
        } else {
            self.values.insert(place, value);
        }
    }

    /// Returns `true` if no place carries ω.
    #[must_use]
    pub fn is_finite(&self) -> bool {
        self.values.values().all(|v| *v != OmegaValue::Omega)
    }

    /// Returns `true` if this marking covers `config` (ω covers anything).
    #[must_use]
    pub fn covers(&self, config: &Multiset<P>) -> bool {
        config.iter().all(|(p, c)| self.get(p).at_least(c))
    }

    /// Component-wise order on ω-markings.
    #[must_use]
    pub fn le(&self, other: &OmegaMarking<P>) -> bool {
        let places: std::collections::BTreeSet<&P> =
            self.values.keys().chain(other.values.keys()).collect();
        places
            .into_iter()
            .all(|p| match (self.get(p), other.get(p)) {
                (OmegaValue::Omega, OmegaValue::Omega) => true,
                (OmegaValue::Omega, OmegaValue::Finite(_)) => false,
                (OmegaValue::Finite(_), OmegaValue::Omega) => true,
                (OmegaValue::Finite(a), OmegaValue::Finite(b)) => a <= b,
            })
    }
}

/// A dense ω-marking row over the engine's place indices.
type OmegaRow = Vec<OmegaValue>;

/// Component-wise order on dense ω-rows of equal width.
fn row_le(a: &[OmegaValue], b: &[OmegaValue]) -> bool {
    a.iter().zip(b).all(|(x, y)| match (x, y) {
        (OmegaValue::Omega, OmegaValue::Omega) => true,
        (OmegaValue::Omega, OmegaValue::Finite(_)) => false,
        (OmegaValue::Finite(_), OmegaValue::Omega) => true,
        (OmegaValue::Finite(a), OmegaValue::Finite(b)) => a <= b,
    })
}

/// Fires compiled transition `t` on `row`, or `Ok(None)` if disabled.
///
/// # Errors
///
/// Propagates [`OmegaOverflow`] from the checked counter arithmetic.
fn fire_row(
    row: &[OmegaValue],
    transition: &crate::engine::CompiledTransition,
) -> Result<Option<OmegaRow>, OmegaOverflow> {
    if !transition
        .pre()
        .iter()
        .all(|&(p, c)| row[p as usize].at_least(c))
    {
        return Ok(None);
    }
    let mut next = row.to_vec();
    for &(p, c) in transition.pre() {
        next[p as usize] = next[p as usize].checked_sub(c)?;
    }
    for &(p, c) in transition.post() {
        next[p as usize] = next[p as usize].checked_add(c)?;
    }
    Ok(Some(next))
}

/// Accelerates `row` against a strictly smaller ancestor: places where it
/// strictly exceeds the ancestor become ω.
fn accelerate(row: &mut [OmegaValue], ancestor: &[OmegaValue]) {
    for (mine, theirs) in row.iter_mut().zip(ancestor) {
        if let (OmegaValue::Finite(m), OmegaValue::Finite(t)) = (*mine, *theirs) {
            if m > t {
                *mine = OmegaValue::Omega;
            }
        }
    }
}

/// One node of an ancestor chain.
///
/// Branches are shared immutable linked lists: extending a branch for a
/// child is one `Arc` clone instead of copying the whole ancestor vector,
/// which is what makes the speculative next-wave expansion of the
/// pipelined builder cheap to fan out.
struct BranchNode {
    row: OmegaRow,
    parent: BranchLink,
}

impl Drop for BranchNode {
    fn drop(&mut self) {
        // Unlink the chain iteratively: the default recursive drop would
        // use one stack frame per ancestor, overflowing on the deep
        // non-branching chains an acceleration-free net produces.
        let mut parent = self.parent.take();
        while let Some(node) = parent {
            match Arc::try_unwrap(node) {
                Ok(mut node) => parent = node.parent.take(),
                // Some other branch still shares this tail: leave it.
                Err(_) => break,
            }
        }
    }
}

/// A (possibly empty) ancestor chain, leaf-most node first.
type BranchLink = Option<Arc<BranchNode>>;

/// Iterates the ancestor rows of `link`, leaf to root.
fn ancestor_rows(link: &BranchLink) -> impl Iterator<Item = &OmegaRow> {
    std::iter::successors(link.as_deref(), |node| node.parent.as_deref()).map(|node| &node.row)
}

/// The result of expanding one pending node, computed independently of
/// every other node (which is what makes sibling expansion parallel).
struct Expansion {
    /// Some branch ancestor already covers the row: stop this branch.
    subsumed: bool,
    /// Child markings, in transition order, already ω-accelerated against
    /// *all* branch ancestors (not just the parent).
    children: Vec<OmegaRow>,
    /// Some child's counters left the `u64` range; the branch is dropped
    /// and the tree reported incomplete.
    overflowed: bool,
}

/// Expands one pending node: subsumption check against the branch, then one
/// child per enabled transition, accelerated against every ancestor (root
/// first, the classical order). Takes the compiled transitions rather than
/// the whole engine so worker threads need no bounds on the place type.
fn expand_node(
    transitions: &[crate::engine::CompiledTransition],
    row: &OmegaRow,
    parent: &BranchLink,
) -> Expansion {
    if ancestor_rows(parent).any(|a| row_le(row, a)) {
        return Expansion {
            subsumed: true,
            children: Vec::new(),
            overflowed: false,
        };
    }
    let chain: Vec<&OmegaRow> = ancestor_rows(parent).collect();
    let mut children = Vec::new();
    let mut overflowed = false;
    for transition in transitions {
        match fire_row(row, transition) {
            Ok(Some(mut next)) => {
                for ancestor in chain.iter().rev().copied().chain(std::iter::once(row)) {
                    if row_le(ancestor, &next) && ancestor != &next {
                        accelerate(&mut next, ancestor);
                    }
                }
                children.push(next);
            }
            Ok(None) => {}
            Err(OmegaOverflow) => {
                overflowed = true;
            }
        }
    }
    Expansion {
        subsumed: false,
        children,
        overflowed,
    }
}

/// Fans one wave out over `workers` cooperating threads (pure node-local
/// work; all admission decisions stay with the caller).
fn expand_wave(
    items: &[(OmegaRow, BranchLink)],
    transitions: &[crate::engine::CompiledTransition],
    workers: usize,
) -> Vec<Expansion> {
    if workers > 1 && items.len() >= PARALLEL_WAVE_THRESHOLD {
        items
            .par_chunks(items.len().div_ceil(workers))
            .map(|chunk| {
                chunk
                    .iter()
                    .map(|(row, parent)| expand_node(transitions, row, parent))
                    .collect::<Vec<_>>()
            })
            .collect::<Vec<_>>()
            .into_iter()
            .flatten()
            .collect()
    } else {
        items
            .iter()
            .map(|(row, parent)| expand_node(transitions, row, parent))
            .collect()
    }
}

/// Fan a wave out over threads once it holds this many pending nodes;
/// below it, thread spawns would dominate the branch scans.
const PARALLEL_WAVE_THRESHOLD: usize = 64;

/// One wave item's admission inputs: its (already expanded) branch node
/// plus the flags the sequential admission order needs.
struct WaveSlot {
    /// `None` exactly when the node was subsumed by an ancestor.
    branch: BranchLink,
    overflowed: bool,
}

/// Which limits bit during a tree construction; the admission runs
/// strictly in wave order in every mode, so the flags are deterministic
/// across worker counts.
#[derive(Debug, Clone, Copy, Default)]
struct KmTruncation {
    budget: bool,
    overflow: bool,
}

impl KmTruncation {
    /// The dominant [`Completion`]: node budget before ω-overflow.
    fn completion(self) -> Completion {
        if self.budget {
            Completion::ConfigBudget
        } else if self.overflow {
            Completion::OmegaOverflow
        } else {
            Completion::Complete
        }
    }
}

/// The admitted-markings store, packed with per-place cell widths.
///
/// ω is encoded as the cell's max value (a sentinel), so acceleration to
/// ω never widens anything — the sentinel fits every width. A *finite*
/// count at or above a place's sentinel instead promotes that single
/// place to the next wider cell and re-encodes the stored rows; every
/// other place keeps its narrow cells. With the packing gate off every
/// place starts (and stays) at `u64`.
struct PackedOmegaStore {
    widths: Vec<CellWidth>,
    layout: RowLayout,
    data: Vec<u64>,
    len: usize,
    /// Rows holding a finite count of exactly `u64::MAX`, which would
    /// collide with the `u64` ω sentinel — kept unpacked on the side
    /// (all but unreachable under checked ω-arithmetic; their packed
    /// slots stay zeroed placeholders).
    unpackable: BTreeMap<usize, OmegaRow>,
}

impl PackedOmegaStore {
    /// An empty store over `places` cells, sized so the initial marking's
    /// largest count packs without an immediate promotion.
    fn new(places: usize, max_initial_cell: u64) -> Self {
        let width = if packed_enabled() {
            CellWidth::fitting(max_initial_cell.saturating_add(1))
        } else {
            CellWidth::U64
        };
        let widths = vec![width; places];
        let layout = RowLayout::per_place(widths.clone());
        PackedOmegaStore {
            widths,
            layout,
            data: Vec::new(),
            len: 0,
            unpackable: BTreeMap::new(),
        }
    }

    fn len(&self) -> usize {
        self.len
    }

    /// Decodes one stored row back to ω-values.
    fn decode(&self, index: usize) -> OmegaRow {
        if let Some(row) = self.unpackable.get(&index) {
            return row.clone();
        }
        let words = self.layout.words_per_row();
        let row = &self.data[index * words..(index + 1) * words];
        (0..self.layout.places())
            .map(|place| {
                let cell = self.layout.get(row, place);
                if cell == self.widths[place].cell_max() {
                    OmegaValue::Omega
                } else {
                    OmegaValue::Finite(cell)
                }
            })
            .collect()
    }

    /// Appends a marking, promoting any place whose finite count would
    /// collide with its current ω sentinel.
    fn push(&mut self, row: &[OmegaValue]) {
        debug_assert_eq!(row.len(), self.layout.places());
        for (place, value) in row.iter().enumerate() {
            if let OmegaValue::Finite(c) = *value {
                while c >= self.widths[place].cell_max() {
                    match self.widths[place].widen() {
                        Some(wider) => self.promote(place, wider),
                        None => {
                            // c == u64::MAX: no wider cell exists, keep
                            // the row unpacked so the sentinel stays
                            // unambiguous.
                            self.unpackable.insert(self.len, row.to_vec());
                            self.data
                                .resize(self.data.len() + self.layout.words_per_row(), 0);
                            self.len += 1;
                            return;
                        }
                    }
                }
            }
        }
        self.append_packed(row);
        self.len += 1;
    }

    /// Encodes `row` (already known to fit) at the end of the data block.
    fn append_packed(&mut self, row: &[OmegaValue]) {
        let start = self.data.len();
        self.data.resize(start + self.layout.words_per_row(), 0);
        for (place, value) in row.iter().enumerate() {
            let cell = match *value {
                OmegaValue::Finite(c) => c,
                OmegaValue::Omega => self.widths[place].cell_max(),
            };
            self.layout.set(&mut self.data[start..], place, cell);
        }
    }

    /// Widens one place's cells and re-encodes every stored row. Already
    /// stored counts all fit the widened layout (they fit the narrower
    /// one), so the re-encoding cannot itself promote.
    fn promote(&mut self, place: usize, wider: CellWidth) {
        let rows: Vec<OmegaRow> = (0..self.len).map(|i| self.decode(i)).collect();
        self.widths[place] = wider;
        self.layout = RowLayout::per_place(self.widths.clone());
        self.data.clear();
        for (index, row) in rows.iter().enumerate() {
            if self.unpackable.contains_key(&index) {
                self.data
                    .resize(self.data.len() + self.layout.words_per_row(), 0);
            } else {
                self.append_packed(row);
            }
        }
    }

    /// Decodes the whole store, in admission order.
    fn into_rows(self) -> Vec<OmegaRow> {
        (0..self.len).map(|i| self.decode(i)).collect()
    }
}

/// The serial wave-order admission: counts every admitted node against
/// `max_nodes` and appends its marking — exactly the sequential builder's
/// bookkeeping, so the tree is identical across worker counts. Returns
/// `false` when the node budget cut the wave short (the whole build
/// stops, as in the sequential breadth-first order).
fn admit_wave(
    slots: &[WaveSlot],
    rows: &mut PackedOmegaStore,
    max_nodes: usize,
    trunc: &mut KmTruncation,
) -> bool {
    for slot in slots {
        if rows.len() >= max_nodes {
            trunc.budget = true;
            return false;
        }
        let Some(node) = &slot.branch else {
            continue; // subsumed: no marking, no children
        };
        if slot.overflowed {
            trunc.overflow = true;
        }
        rows.push(&node.row);
    }
    true
}

/// A Karp–Miller coverability tree, stored as its set of ω-markings.
#[derive(Debug, Clone)]
pub struct KarpMillerTree<P: Ord> {
    markings: Vec<OmegaMarking<P>>,
    completion: Completion,
}

impl<P: Clone + Ord> KarpMillerTree<P> {
    /// Builds the tree from `initial`, exploring at most `max_nodes` nodes,
    /// on the single-threaded engine.
    ///
    /// Equivalent to [`build_with`](Self::build_with) with
    /// [`Parallelism::Sequential`].
    ///
    /// **Deprecated**: use the session API instead —
    /// [`Analysis::new`](crate::session::Analysis::new)`(net).karp_miller(initial).max_nodes(n).run()`.
    #[deprecated(
        note = "open an `Analysis` session instead: `Analysis::new(net).karp_miller(initial).max_nodes(n).run()` compiles the net once and caches the tree"
    )]
    #[must_use]
    pub fn build(net: &PetriNet<P>, initial: &Multiset<P>, max_nodes: usize) -> Self {
        let engine = CompiledNet::compile_with_places(net, initial.support().cloned());
        Self::build_on(&engine, initial, max_nodes, Parallelism::Sequential)
    }

    /// Builds the tree from `initial`, exploring at most `max_nodes` nodes.
    ///
    /// The search runs on the dense engine, wave by wave: every pending
    /// node of the current wave is expanded — subsumption check against its
    /// branch, one child per enabled transition, ω-acceleration against
    /// *all* its ancestors — and the children form the next wave. Node
    /// expansion only reads the node's own branch, so with
    /// [`Parallelism::Parallel`] the waves fan out over worker threads.
    ///
    /// Like the pipelined exploration engine, the wave-order admission
    /// (budget counting and the marking list — the serial fraction) is
    /// **overlapped** with expansion: while this thread admits wave *w*,
    /// a helper thread already expands wave *w+1*'s candidate children,
    /// whose ancestor chains are shared `Arc` links and therefore free to
    /// hand out. Admission still runs strictly in wave order, making the
    /// tree **identical** across modes and worker counts.
    ///
    /// The tree is reported as incomplete when the node budget is hit *or*
    /// when some branch's counters left the `u64` range (checked arithmetic
    /// instead of the former panic); [`completion`](Self::completion) says
    /// which.
    ///
    /// **Deprecated**: use the session API instead —
    /// [`Analysis::new`](crate::session::Analysis::new)`(net).karp_miller(initial).max_nodes(n).parallelism(p).run()`.
    #[deprecated(
        note = "open an `Analysis` session instead: `Analysis::new(net).karp_miller(initial).max_nodes(n).parallelism(p).run()` compiles the net once and caches the tree"
    )]
    #[must_use]
    pub fn build_with(
        net: &PetriNet<P>,
        initial: &Multiset<P>,
        max_nodes: usize,
        parallelism: Parallelism,
    ) -> Self {
        let engine = CompiledNet::compile_with_places(net, initial.support().cloned());
        Self::build_on(&engine, initial, max_nodes, parallelism)
    }

    /// Builds the tree on an already-compiled engine — the session entry
    /// point ([`Analysis`](crate::session::Analysis) owns the shared
    /// engine). The initial configuration must fit the engine's universe.
    pub(crate) fn build_on(
        engine: &CompiledNet<P>,
        initial: &Multiset<P>,
        max_nodes: usize,
        parallelism: Parallelism,
    ) -> Self {
        let dense_initial = engine
            .to_dense(initial)
            .expect("initial support is part of the compiled universe");
        let root: OmegaRow = dense_initial
            .iter()
            .map(|&c| OmegaValue::Finite(c))
            .collect();
        let mut rows = PackedOmegaStore::new(
            engine.num_places(),
            dense_initial.iter().copied().max().unwrap_or(0),
        );
        let mut trunc = KmTruncation::default();
        let workers = parallelism.workers();
        let transitions = engine.transitions();
        let mut wave: Vec<(OmegaRow, BranchLink)> = vec![(root, None)];
        let mut expansions = expand_wave(&wave, transitions, workers);
        loop {
            // Turn the expanded wave into admission slots plus the
            // speculative candidate items of the next wave (children keep
            // their parent's chain through one shared Arc each).
            let mut slots: Vec<WaveSlot> = Vec::with_capacity(wave.len());
            let mut candidates: Vec<(OmegaRow, BranchLink)> = Vec::new();
            for ((row, parent), expansion) in wave.drain(..).zip(expansions.drain(..)) {
                if expansion.subsumed {
                    slots.push(WaveSlot {
                        branch: None,
                        overflowed: false,
                    });
                    continue;
                }
                let node = Arc::new(BranchNode { row, parent });
                for child in expansion.children {
                    candidates.push((child, Some(node.clone())));
                }
                slots.push(WaveSlot {
                    branch: Some(node),
                    overflowed: expansion.overflowed,
                });
            }

            // Overlap this wave's serial admission with the speculative
            // expansion of the next wave. On a budget cut the speculative
            // results are discarded — exactly the nodes the sequential
            // builder would never have expanded.
            let mut admitted_all = true;
            let next_expansions = if workers > 1 && candidates.len() >= PARALLEL_WAVE_THRESHOLD {
                std::thread::scope(|scope| {
                    let expander =
                        scope.spawn(|| expand_wave(&candidates, transitions, workers - 1));
                    admitted_all = admit_wave(&slots, &mut rows, max_nodes, &mut trunc);
                    expander
                        .join()
                        .unwrap_or_else(|panic| std::panic::resume_unwind(panic))
                })
            } else {
                admitted_all = admit_wave(&slots, &mut rows, max_nodes, &mut trunc);
                if admitted_all && !candidates.is_empty() {
                    expand_wave(&candidates, transitions, workers)
                } else {
                    Vec::new()
                }
            };
            if !admitted_all || candidates.is_empty() {
                break;
            }
            wave = candidates;
            expansions = next_expansions;
        }
        let markings = rows
            .into_rows()
            .into_iter()
            .map(|row| {
                let mut marking = OmegaMarking {
                    values: BTreeMap::new(),
                };
                for (index, value) in row.into_iter().enumerate() {
                    marking.set(engine.places()[index].clone(), value);
                }
                marking
            })
            .collect();
        KarpMillerTree {
            markings,
            completion: trunc.completion(),
        }
    }

    /// The ω-markings of the tree.
    #[must_use]
    pub fn markings(&self) -> &[OmegaMarking<P>] {
        &self.markings
    }

    /// Returns `true` if the tree was fully built within the node budget
    /// and without counter overflow.
    ///
    /// Shim over [`completion`](Self::completion), which additionally says
    /// *which* limit truncated the tree.
    #[must_use]
    pub fn is_complete(&self) -> bool {
        self.completion.is_complete()
    }

    /// How the construction ended: [`Completion::Complete`], the node
    /// budget ([`Completion::ConfigBudget`]) or a counter overflow
    /// ([`Completion::OmegaOverflow`]).
    #[must_use]
    pub fn completion(&self) -> Completion {
        self.completion
    }

    /// Returns `true` if some marking of the tree covers `config`.
    ///
    /// When the tree is complete this decides coverability from the initial
    /// configuration.
    #[must_use]
    pub fn covers(&self, config: &Multiset<P>) -> bool {
        self.markings.iter().any(|m| m.covers(config))
    }

    /// Returns `true` if the net is bounded from the initial configuration
    /// (no ω appears). Meaningful only when the tree is complete.
    #[must_use]
    pub fn is_bounded(&self) -> bool {
        self.markings.iter().all(OmegaMarking::is_finite)
    }

    /// Returns `true` if the given place stays bounded (never accelerates to ω).
    #[must_use]
    pub fn place_is_bounded(&self, place: &P) -> bool {
        self.markings
            .iter()
            .all(|m| m.get(place) != OmegaValue::Omega)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cover::is_coverable;
    use crate::session::Analysis;
    use crate::Transition;

    fn ms(pairs: &[(&'static str, u64)]) -> Multiset<&'static str> {
        Multiset::from_pairs(pairs.iter().copied())
    }

    /// One-shot sequential build through the session API — what the
    /// deprecated `KarpMillerTree::build` shim forwards external
    /// callers to.
    fn build(
        net: &PetriNet<&'static str>,
        initial: &Multiset<&'static str>,
        max_nodes: usize,
    ) -> Arc<KarpMillerTree<&'static str>> {
        build_with(net, initial, max_nodes, Parallelism::Sequential)
    }

    /// One-shot build through the session API at a chosen parallelism.
    fn build_with(
        net: &PetriNet<&'static str>,
        initial: &Multiset<&'static str>,
        max_nodes: usize,
        parallelism: Parallelism,
    ) -> Arc<KarpMillerTree<&'static str>> {
        Analysis::new(net)
            .karp_miller(initial.clone())
            .max_nodes(max_nodes)
            .parallelism(parallelism)
            .run()
    }

    #[test]
    fn conservative_net_is_bounded() {
        let net = PetriNet::from_transitions([
            Transition::pairwise("a", "a", "a", "b"),
            Transition::pairwise("a", "b", "b", "b"),
        ]);
        let tree = build(&net, &ms(&[("a", 3)]), 10_000);
        assert!(tree.is_complete());
        assert!(tree.is_bounded());
        assert!(tree.covers(&ms(&[("b", 3)])));
        assert!(!tree.covers(&ms(&[("b", 4)])));
    }

    #[test]
    fn creation_net_accelerates_to_omega() {
        let net = PetriNet::from_transitions([Transition::new(
            ms(&[("a", 1)]),
            ms(&[("a", 1), ("b", 1)]),
        )]);
        let tree = build(&net, &ms(&[("a", 1)]), 10_000);
        assert!(tree.is_complete());
        assert!(!tree.is_bounded());
        assert!(tree.place_is_bounded(&"a"));
        assert!(!tree.place_is_bounded(&"b"));
        // Any number of b's is coverable.
        assert!(tree.covers(&ms(&[("b", 1_000_000), ("a", 1)])));
        assert!(!tree.covers(&ms(&[("a", 2)])));
    }

    #[test]
    fn karp_miller_agrees_with_backward_coverability() {
        let net = PetriNet::from_transitions([
            Transition::pairwise("i", "i_bar", "p", "q"),
            Transition::pairwise("p_bar", "i", "p", "i"),
            Transition::pairwise("p", "i_bar", "p_bar", "i_bar"),
            Transition::pairwise("q_bar", "i", "q", "i"),
            Transition::pairwise("q", "i_bar", "q_bar", "i_bar"),
            Transition::pairwise("p", "q_bar", "p", "q"),
            Transition::pairwise("q", "p_bar", "q", "p"),
        ]);
        let start = ms(&[("i", 2), ("i_bar", 2)]);
        let tree = build(&net, &start, 100_000);
        assert!(tree.is_complete());
        for target in [
            ms(&[("p", 1)]),
            ms(&[("p", 1), ("q", 1)]),
            ms(&[("p_bar", 1), ("q_bar", 1)]),
            ms(&[("p", 3)]),
            ms(&[("i", 3)]),
        ] {
            assert_eq!(
                tree.covers(&target),
                is_coverable(&net, &start, &target),
                "karp-miller and backward coverability disagree on {target:?}"
            );
        }
    }

    #[test]
    fn acceleration_uses_all_ancestors_not_just_the_parent() {
        // a --t0--> b --t1--> a + c: after t0·t1 the marking {a, c} strictly
        // dominates its *grandparent* {a} but not its parent {b}. An
        // implementation accelerating only against the parent would never
        // introduce ω on c and would keep unrolling a+c, a+2c, a+3c, …
        // (under-approximating until the node budget kills it); comparing
        // against the full ancestor chain pumps c to ω immediately.
        let net = PetriNet::from_transitions([
            Transition::new(ms(&[("a", 1)]), ms(&[("b", 1)])),
            Transition::new(ms(&[("b", 1)]), ms(&[("a", 1), ("c", 1)])),
        ]);
        let start = ms(&[("a", 1)]);
        let tree = build(&net, &start, 100);
        assert!(
            tree.is_complete(),
            "without full-ancestor acceleration the tree keeps growing"
        );
        assert!(!tree.place_is_bounded(&"c"));
        assert!(tree.place_is_bounded(&"a"));
        assert!(tree.place_is_bounded(&"b"));
        // The reported coverability set is exact: arbitrarily many c's are
        // coverable (together with the single token cycling a -> b -> a),
        // and the backward algorithm agrees on every probe.
        for target in [
            ms(&[("c", 1_000)]),
            ms(&[("a", 1), ("c", 7)]),
            ms(&[("b", 1), ("c", 3)]),
            ms(&[("a", 1), ("b", 1)]),
            ms(&[("a", 2)]),
        ] {
            assert_eq!(
                tree.covers(&target),
                is_coverable(&net, &start, &target),
                "coverability set is wrong at {target:?}"
            );
        }
    }

    #[test]
    fn parallel_tree_is_identical_to_sequential() {
        use crate::parallel::Parallelism;
        let nets = [
            PetriNet::from_transitions([
                Transition::pairwise("a", "a", "a", "b"),
                Transition::pairwise("a", "b", "b", "b"),
            ]),
            PetriNet::from_transitions([
                Transition::new(ms(&[("a", 1)]), ms(&[("a", 1), ("b", 1)])),
                Transition::new(ms(&[("b", 2)]), ms(&[("c", 1)])),
            ]),
        ];
        for net in &nets {
            for agents in [1u64, 3, 6] {
                let start = ms(&[("a", agents)]);
                let sequential = build(net, &start, 10_000);
                for workers in [1usize, 2, 4] {
                    let parallel = build_with(net, &start, 10_000, Parallelism::Parallel(workers));
                    assert_eq!(sequential.markings(), parallel.markings());
                    assert_eq!(sequential.is_complete(), parallel.is_complete());
                }
            }
        }
    }

    #[test]
    fn deep_branch_chains_drop_without_recursion() {
        // A 100k-deep non-branching ancestor chain (what an
        // acceleration-free net builds) must drop iteratively: the
        // default recursive drop would blow a 512 KiB stack long before
        // that depth. Run in a small-stack thread so a regression shows
        // up at any default stack size.
        std::thread::Builder::new()
            .stack_size(512 * 1024)
            .spawn(|| {
                let mut chain: BranchLink = None;
                for depth in 0..100_000u64 {
                    chain = Some(Arc::new(BranchNode {
                        row: vec![OmegaValue::Finite(depth)],
                        parent: chain,
                    }));
                }
                assert_eq!(ancestor_rows(&chain).count(), 100_000);
                drop(chain);
            })
            .expect("spawn small-stack thread")
            .join()
            .expect("deep chain drop must not overflow the stack");
    }

    #[test]
    fn node_budget_reported() {
        let net = PetriNet::from_transitions([Transition::new(
            ms(&[("a", 1)]),
            ms(&[("a", 1), ("b", 1)]),
        )]);
        let tree = build(&net, &ms(&[("a", 1)]), 1);
        assert!(!tree.is_complete());
    }

    #[test]
    fn omega_marking_order_and_cover() {
        let finite = OmegaMarking::from_config(&ms(&[("a", 2)]));
        let mut omega = finite.clone();
        omega.set("a", OmegaValue::Omega);
        assert!(finite.le(&omega));
        assert!(!omega.le(&finite));
        assert!(omega.covers(&ms(&[("a", 1_000)])));
        assert!(!finite.covers(&ms(&[("a", 3)])));
        assert!(!omega.is_finite() && finite.is_finite());
    }

    #[test]
    fn checked_arithmetic_reports_overflow() {
        assert_eq!(
            OmegaValue::Finite(u64::MAX).checked_add(1),
            Err(OmegaOverflow)
        );
        assert_eq!(OmegaValue::Finite(3).checked_sub(4), Err(OmegaOverflow));
        assert_eq!(
            OmegaValue::Finite(3).checked_add(4),
            Ok(OmegaValue::Finite(7))
        );
        assert_eq!(
            OmegaValue::Omega.checked_add(u64::MAX),
            Ok(OmegaValue::Omega)
        );
        assert_eq!(
            OmegaValue::Omega.checked_sub(u64::MAX),
            Ok(OmegaValue::Omega)
        );
        assert!(!OmegaOverflow.to_string().is_empty());
    }

    #[test]
    fn packed_store_promotes_a_single_place_width() {
        let _gate = crate::packed::GATE_TEST_LOCK.lock().unwrap();
        let was = crate::packed::packed_enabled();
        crate::packed::set_packed_enabled(true);
        let mut store = PackedOmegaStore::new(3, 2);
        // u8 cells to start with: the initial max cell is 2.
        assert_eq!(store.widths, vec![CellWidth::U8; 3]);
        store.push(&[
            OmegaValue::Finite(2),
            OmegaValue::Finite(0),
            OmegaValue::Finite(0),
        ]);
        // ω is a sentinel, not a promotion: widths stay u8.
        store.push(&[
            OmegaValue::Finite(1),
            OmegaValue::Omega,
            OmegaValue::Finite(3),
        ]);
        assert_eq!(store.widths, vec![CellWidth::U8; 3]);
        // A finite 300 at place 2 promotes *only* place 2 to u16, and the
        // earlier rows (including the ω sentinel) re-encode correctly.
        store.push(&[
            OmegaValue::Finite(1),
            OmegaValue::Omega,
            OmegaValue::Finite(300),
        ]);
        assert_eq!(
            store.widths,
            vec![CellWidth::U8, CellWidth::U8, CellWidth::U16]
        );
        assert_eq!(
            store.decode(1),
            vec![
                OmegaValue::Finite(1),
                OmegaValue::Omega,
                OmegaValue::Finite(3)
            ]
        );
        assert_eq!(
            store.decode(2),
            vec![
                OmegaValue::Finite(1),
                OmegaValue::Omega,
                OmegaValue::Finite(300)
            ]
        );
        // The one unpackable count — finite u64::MAX collides with the
        // u64 ω sentinel — round-trips through the side store.
        let extreme = vec![
            OmegaValue::Finite(u64::MAX),
            OmegaValue::Omega,
            OmegaValue::Finite(0),
        ];
        store.push(&extreme);
        assert_eq!(store.decode(3), extreme);
        assert_eq!(store.len(), 4);
        crate::packed::set_packed_enabled(was);
    }

    #[test]
    fn width_promotion_preserves_the_tree() {
        // x -> y + 300 z: the first admitted child already carries a count
        // over u8's sentinel, so the store promotes mid-build; the
        // resulting markings must match the gate-off (u64-cells) build.
        let _gate = crate::packed::GATE_TEST_LOCK.lock().unwrap();
        let was = crate::packed::packed_enabled();
        let net = PetriNet::from_transitions([Transition::new(
            ms(&[("x", 1)]),
            ms(&[("y", 1), ("z", 300)]),
        )]);
        let start = ms(&[("x", 2)]);
        crate::packed::set_packed_enabled(true);
        let packed = build(&net, &start, 10_000);
        crate::packed::set_packed_enabled(false);
        let unpacked = build(&net, &start, 10_000);
        crate::packed::set_packed_enabled(was);
        assert_eq!(packed.markings(), unpacked.markings());
        assert_eq!(packed.completion(), unpacked.completion());
        assert!(packed.covers(&ms(&[("z", 600)])));
        assert!(!packed.covers(&ms(&[("z", 601)])));
    }

    #[test]
    fn counter_overflow_marks_tree_incomplete_instead_of_panicking() {
        // x -> y + huge·z consumes x, so successive markings are
        // incomparable and never accelerate; the second firing pushes z
        // past u64::MAX. The former implementation panicked on
        // `i64::try_from`; now the branch is dropped and the tree is
        // reported incomplete.
        let huge = u64::MAX / 2 + 1;
        let net = PetriNet::from_transitions([Transition::new(
            ms(&[("x", 1)]),
            ms(&[("y", 1), ("z", huge)]),
        )]);
        let tree = build(&net, &ms(&[("x", 2)]), 10_000);
        assert!(!tree.is_complete());
        assert!(tree.covers(&ms(&[("z", huge)])));
        assert!(!tree.covers(&ms(&[("y", 2)])));
    }

    #[test]
    #[allow(deprecated)]
    fn deprecated_one_shot_shims_forward_to_the_session_path() {
        let net = PetriNet::from_transitions([
            Transition::new(ms(&[("x", 1)]), ms(&[("y", 1)])),
            Transition::new(ms(&[("y", 1)]), ms(&[("x", 1), ("z", 1)])),
        ]);
        let start = ms(&[("x", 1)]);
        let session = build(&net, &start, 10_000);

        // pp-lint: allow(deprecated-internal) — the shim's forwarding is itself under test
        let shim = KarpMillerTree::build(&net, &start, 10_000);
        assert_eq!(shim.markings(), session.markings());
        assert_eq!(shim.completion(), session.completion());

        // pp-lint: allow(deprecated-internal) — the shim's forwarding is itself under test
        let shim = KarpMillerTree::build_with(&net, &start, 10_000, Parallelism::Parallel(2));
        assert_eq!(shim.markings(), session.markings());
        assert_eq!(shim.completion(), session.completion());
    }
}
