//! Karp–Miller coverability trees.
//!
//! The Karp–Miller tree finitely represents the (downward closure of the)
//! coverability set of a Petri net using ω-markings: places that can be pumped
//! unboundedly are accelerated to ω. The suite uses it as an alternative
//! coverability/boundedness procedure next to the backward algorithm of
//! [`cover`](crate::cover) — experiment E5's ablation compares the two — and
//! to detect unbounded places of non-conservative protocols.

use crate::PetriNet;
use pp_multiset::Multiset;
use std::collections::BTreeMap;

/// A marking value: a finite count or ω (unbounded).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum OmegaValue {
    /// A finite number of agents.
    Finite(u64),
    /// Unboundedly many agents (the ω of Karp–Miller acceleration).
    Omega,
}

impl OmegaValue {
    fn at_least(self, needed: u64) -> bool {
        match self {
            OmegaValue::Finite(v) => v >= needed,
            OmegaValue::Omega => true,
        }
    }

    fn add(self, delta: i64) -> OmegaValue {
        match self {
            OmegaValue::Finite(v) => {
                let new = i64::try_from(v).expect("count fits i64") + delta;
                OmegaValue::Finite(u64::try_from(new).expect("marking stays non-negative"))
            }
            OmegaValue::Omega => OmegaValue::Omega,
        }
    }
}

/// An ω-marking: a configuration whose counts may be ω.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct OmegaMarking<P: Ord> {
    values: BTreeMap<P, OmegaValue>,
}

impl<P: Clone + Ord> OmegaMarking<P> {
    /// The ω-marking corresponding to a plain configuration.
    #[must_use]
    pub fn from_config(config: &Multiset<P>) -> Self {
        OmegaMarking {
            values: config
                .iter()
                .map(|(p, c)| (p.clone(), OmegaValue::Finite(c)))
                .collect(),
        }
    }

    /// The value of `place` (zero if absent).
    #[must_use]
    pub fn get(&self, place: &P) -> OmegaValue {
        self.values
            .get(place)
            .copied()
            .unwrap_or(OmegaValue::Finite(0))
    }

    fn set(&mut self, place: P, value: OmegaValue) {
        if value == OmegaValue::Finite(0) {
            self.values.remove(&place);
        } else {
            self.values.insert(place, value);
        }
    }

    /// Returns `true` if no place carries ω.
    #[must_use]
    pub fn is_finite(&self) -> bool {
        self.values.values().all(|v| *v != OmegaValue::Omega)
    }

    /// Returns `true` if this marking covers `config` (ω covers anything).
    #[must_use]
    pub fn covers(&self, config: &Multiset<P>) -> bool {
        config.iter().all(|(p, c)| self.get(p).at_least(c))
    }

    /// Component-wise order on ω-markings.
    #[must_use]
    pub fn le(&self, other: &OmegaMarking<P>) -> bool {
        let places: std::collections::BTreeSet<&P> =
            self.values.keys().chain(other.values.keys()).collect();
        places.into_iter().all(|p| match (self.get(p), other.get(p)) {
            (OmegaValue::Omega, OmegaValue::Omega) => true,
            (OmegaValue::Omega, OmegaValue::Finite(_)) => false,
            (OmegaValue::Finite(_), OmegaValue::Omega) => true,
            (OmegaValue::Finite(a), OmegaValue::Finite(b)) => a <= b,
        })
    }

    /// Fires transition `t` if enabled (ω satisfies any precondition).
    #[must_use]
    fn fire(&self, pre: &Multiset<P>, post: &Multiset<P>) -> Option<OmegaMarking<P>> {
        if !self.covers(pre) {
            return None;
        }
        let mut next = self.clone();
        for (p, c) in pre.iter() {
            let value = next.get(p).add(-(i64::try_from(c).expect("count fits i64")));
            next.set(p.clone(), value);
        }
        for (p, c) in post.iter() {
            let value = next.get(p).add(i64::try_from(c).expect("count fits i64"));
            next.set(p.clone(), value);
        }
        Some(next)
    }

    /// Accelerates against a strictly smaller ancestor: places where this
    /// marking strictly exceeds the ancestor become ω.
    fn accelerate(&mut self, ancestor: &OmegaMarking<P>) {
        let places: Vec<P> = self.values.keys().cloned().collect();
        for p in places {
            if let (OmegaValue::Finite(mine), OmegaValue::Finite(theirs)) =
                (self.get(&p), ancestor.get(&p))
            {
                if mine > theirs {
                    self.set(p, OmegaValue::Omega);
                }
            }
        }
    }
}

/// A Karp–Miller coverability tree, stored as its set of ω-markings.
#[derive(Debug, Clone)]
pub struct KarpMillerTree<P: Ord> {
    markings: Vec<OmegaMarking<P>>,
    complete: bool,
}

impl<P: Clone + Ord> KarpMillerTree<P> {
    /// Builds the tree from `initial`, exploring at most `max_nodes` nodes.
    #[must_use]
    pub fn build(net: &PetriNet<P>, initial: &Multiset<P>, max_nodes: usize) -> Self {
        let root = OmegaMarking::from_config(initial);
        let mut markings: Vec<OmegaMarking<P>> = Vec::new();
        let mut complete = true;
        // Each work item carries its branch (ancestor chain) for acceleration.
        let mut stack: Vec<(OmegaMarking<P>, Vec<OmegaMarking<P>>)> = vec![(root, Vec::new())];
        while let Some((marking, ancestors)) = stack.pop() {
            if markings.len() >= max_nodes {
                complete = false;
                break;
            }
            // Stop expanding when an ancestor is ≥ this marking (subsumption
            // on the branch, the classical termination rule).
            if ancestors.iter().any(|a| marking.le(a)) {
                continue;
            }
            markings.push(marking.clone());
            for t in net.transitions() {
                if let Some(mut next) = marking.fire(t.pre(), t.post()) {
                    for ancestor in ancestors.iter().chain(std::iter::once(&marking)) {
                        if ancestor.le(&next) && ancestor != &next {
                            next.accelerate(ancestor);
                        }
                    }
                    let mut branch = ancestors.clone();
                    branch.push(marking.clone());
                    stack.push((next, branch));
                }
            }
        }
        KarpMillerTree { markings, complete }
    }

    /// The ω-markings of the tree.
    #[must_use]
    pub fn markings(&self) -> &[OmegaMarking<P>] {
        &self.markings
    }

    /// Returns `true` if the tree was fully built within the node budget.
    #[must_use]
    pub fn is_complete(&self) -> bool {
        self.complete
    }

    /// Returns `true` if some marking of the tree covers `config`.
    ///
    /// When the tree is complete this decides coverability from the initial
    /// configuration.
    #[must_use]
    pub fn covers(&self, config: &Multiset<P>) -> bool {
        self.markings.iter().any(|m| m.covers(config))
    }

    /// Returns `true` if the net is bounded from the initial configuration
    /// (no ω appears). Meaningful only when the tree is complete.
    #[must_use]
    pub fn is_bounded(&self) -> bool {
        self.markings.iter().all(OmegaMarking::is_finite)
    }

    /// Returns `true` if the given place stays bounded (never accelerates to ω).
    #[must_use]
    pub fn place_is_bounded(&self, place: &P) -> bool {
        self.markings.iter().all(|m| m.get(place) != OmegaValue::Omega)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cover::is_coverable;
    use crate::Transition;

    fn ms(pairs: &[(&'static str, u64)]) -> Multiset<&'static str> {
        Multiset::from_pairs(pairs.iter().copied())
    }

    #[test]
    fn conservative_net_is_bounded() {
        let net = PetriNet::from_transitions([
            Transition::pairwise("a", "a", "a", "b"),
            Transition::pairwise("a", "b", "b", "b"),
        ]);
        let tree = KarpMillerTree::build(&net, &ms(&[("a", 3)]), 10_000);
        assert!(tree.is_complete());
        assert!(tree.is_bounded());
        assert!(tree.covers(&ms(&[("b", 3)])));
        assert!(!tree.covers(&ms(&[("b", 4)])));
    }

    #[test]
    fn creation_net_accelerates_to_omega() {
        let net = PetriNet::from_transitions([Transition::new(
            ms(&[("a", 1)]),
            ms(&[("a", 1), ("b", 1)]),
        )]);
        let tree = KarpMillerTree::build(&net, &ms(&[("a", 1)]), 10_000);
        assert!(tree.is_complete());
        assert!(!tree.is_bounded());
        assert!(tree.place_is_bounded(&"a"));
        assert!(!tree.place_is_bounded(&"b"));
        // Any number of b's is coverable.
        assert!(tree.covers(&ms(&[("b", 1_000_000), ("a", 1)])));
        assert!(!tree.covers(&ms(&[("a", 2)])));
    }

    #[test]
    fn karp_miller_agrees_with_backward_coverability() {
        let net = PetriNet::from_transitions([
            Transition::pairwise("i", "i_bar", "p", "q"),
            Transition::pairwise("p_bar", "i", "p", "i"),
            Transition::pairwise("p", "i_bar", "p_bar", "i_bar"),
            Transition::pairwise("q_bar", "i", "q", "i"),
            Transition::pairwise("q", "i_bar", "q_bar", "i_bar"),
            Transition::pairwise("p", "q_bar", "p", "q"),
            Transition::pairwise("q", "p_bar", "q", "p"),
        ]);
        let start = ms(&[("i", 2), ("i_bar", 2)]);
        let tree = KarpMillerTree::build(&net, &start, 100_000);
        assert!(tree.is_complete());
        for target in [
            ms(&[("p", 1)]),
            ms(&[("p", 1), ("q", 1)]),
            ms(&[("p_bar", 1), ("q_bar", 1)]),
            ms(&[("p", 3)]),
            ms(&[("i", 3)]),
        ] {
            assert_eq!(
                tree.covers(&target),
                is_coverable(&net, &start, &target),
                "karp-miller and backward coverability disagree on {target:?}"
            );
        }
    }

    #[test]
    fn node_budget_reported() {
        let net = PetriNet::from_transitions([Transition::new(
            ms(&[("a", 1)]),
            ms(&[("a", 1), ("b", 1)]),
        )]);
        let tree = KarpMillerTree::build(&net, &ms(&[("a", 1)]), 1);
        assert!(!tree.is_complete());
    }

    #[test]
    fn omega_marking_order_and_cover() {
        let finite = OmegaMarking::from_config(&ms(&[("a", 2)]));
        let mut omega = finite.clone();
        omega.set("a", OmegaValue::Omega);
        assert!(finite.le(&omega));
        assert!(!omega.le(&finite));
        assert!(omega.covers(&ms(&[("a", 1_000)])));
        assert!(!finite.covers(&ms(&[("a", 3)])));
        assert!(omega.is_finite() == false && finite.is_finite());
    }
}
