//! Packed configuration rows: per-net cell-width compression with a
//! word-level SWAR fast path.
//!
//! The exploration engines of this crate are memory-bandwidth-bound: a
//! configuration is a dense count vector, and storing every place as a
//! full `u64` (8 bytes) wastes 7 of those bytes on almost every catalog
//! net, where counts are bounded by the agent total (≤ a few hundred).
//! This module provides the compressed representation:
//!
//! * [`CellWidth`] — the four storable cell widths (`u8`/`u16`/`u32`/`u64`)
//!   and the width-selection rule [`CellWidth::fitting`].
//! * [`RowLayout`] — how a row of place counts maps onto a buffer of
//!   `u64` *words*. Cells are packed little-endian inside words, aligned
//!   to their own width so no cell ever straddles a word boundary, and
//!   rows are padded to a whole number of words with zero lanes. Because
//!   the padding is deterministic, packed rows can be hashed and compared
//!   as plain `&[u64]` slices — the arenas never unpack.
//! * SWAR primitives ([`lanes_lt_mask`] and friends) — branch-free
//!   per-lane comparisons on packed words, 8 `u8` lanes (or 4 `u16`
//!   lanes, …) at a time.
//! * [`PackedTransition`] — a transition pre-compiled against a uniform
//!   layout: enabledness is a handful of word compares, firing is one
//!   wrapping subtract + add per touched word.
//! * The [`packed_enabled`] runtime gate (`PP_PETRI_PACKED`), mirroring
//!   the `PP_PETRI_THREADS` knob: setting `PP_PETRI_PACKED=0` forces the
//!   uncompressed `u64` layout everywhere, which the determinism CI jobs
//!   use to prove packed and unpacked builds produce bit-identical
//!   graphs.
//!
//! # Why plain word arithmetic is enough for firing
//!
//! A fired successor is `src - pre + post`, lanewise. Subtracting the
//! packed `pre` word cannot borrow across lanes because firing is only
//! attempted on enabled rows (every lane of `src` is ≥ its `pre` lane),
//! and adding the packed `post` word cannot carry across lanes because
//! the layout width was chosen from a proven bound on every reachable
//! (or fired-and-refused) count — see
//! [`CompiledNet::row_layout`](crate::CompiledNet::row_layout). So the
//! fast path is *unconditional* `wrapping_sub`/`wrapping_add` on whole
//! words; only the enabled check and the backward-cover step (which can
//! genuinely under/overflow) need the SWAR masks.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::OnceLock;

/// Storable width of one packed cell (place count).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum CellWidth {
    /// 1 byte per place: counts up to 255.
    U8,
    /// 2 bytes per place: counts up to 65 535.
    U16,
    /// 4 bytes per place: counts up to 2³² − 1.
    U32,
    /// 8 bytes per place: the uncompressed fallback, any `u64` count.
    U64,
}

impl CellWidth {
    /// Size of one cell in bytes.
    #[inline]
    pub const fn bytes(self) -> usize {
        match self {
            CellWidth::U8 => 1,
            CellWidth::U16 => 2,
            CellWidth::U32 => 4,
            CellWidth::U64 => 8,
        }
    }

    /// Size of one cell in bits.
    #[inline]
    pub const fn bits(self) -> u32 {
        (self.bytes() as u32) * 8
    }

    /// Largest count a cell of this width can hold.
    #[inline]
    pub const fn cell_max(self) -> u64 {
        match self {
            CellWidth::U8 => u8::MAX as u64,
            CellWidth::U16 => u16::MAX as u64,
            CellWidth::U32 => u32::MAX as u64,
            CellWidth::U64 => u64::MAX,
        }
    }

    /// Number of lanes (cells) per 64-bit word.
    #[inline]
    pub const fn lanes(self) -> usize {
        8 / self.bytes()
    }

    /// The narrowest width whose cells can hold `max_value`.
    ///
    /// This is the width-selection rule: feed it the proven bound on any
    /// single place count and it returns the cheapest safe representation.
    #[inline]
    pub const fn fitting(max_value: u64) -> CellWidth {
        if max_value <= u8::MAX as u64 {
            CellWidth::U8
        } else if max_value <= u16::MAX as u64 {
            CellWidth::U16
        } else if max_value <= u32::MAX as u64 {
            CellWidth::U32
        } else {
            CellWidth::U64
        }
    }

    /// The next wider width, or `None` from `U64`.
    #[inline]
    pub const fn widen(self) -> Option<CellWidth> {
        match self {
            CellWidth::U8 => Some(CellWidth::U16),
            CellWidth::U16 => Some(CellWidth::U32),
            CellWidth::U32 => Some(CellWidth::U64),
            CellWidth::U64 => None,
        }
    }

    /// Word with the most-significant bit of every lane set — the `H`
    /// constant of the SWAR comparison trick.
    #[inline]
    pub const fn msb_pattern(self) -> u64 {
        match self {
            CellWidth::U8 => 0x8080_8080_8080_8080,
            CellWidth::U16 => 0x8000_8000_8000_8000,
            CellWidth::U32 => 0x8000_0000_8000_0000,
            CellWidth::U64 => 0x8000_0000_0000_0000,
        }
    }
}

/// Per-lane unsigned `x < y`, reported as a set most-significant bit in
/// each lane where the comparison holds.
///
/// Uses the forced-MSB subtraction trick: with `h` the per-lane MSB
/// pattern, `d = (x | h) - (y & !h)` cannot borrow across lanes (every
/// lane of the left operand has its top bit set, every lane of the right
/// has it clear), so each lane's borrow state is decided locally. The
/// per-lane verdict is then assembled from the operands' own top bits and
/// `d`'s: if the top bits of `x` and `y` differ, `y`'s decides; if they
/// agree, the comparison reduces to the low bits, whose borrow shows up
/// as a cleared top bit in `d`.
///
/// EXACT: the forced MSB on the left operand and cleared MSB on the
/// right bound each lane's subtraction away from a cross-lane borrow, so
/// the single word-level `wrapping_sub` is exact lanewise for every cell
/// width.
#[inline]
pub fn lanes_lt_mask(x: u64, y: u64, width: CellWidth) -> u64 {
    let h = width.msb_pattern();
    let d = (x | h).wrapping_sub(y & !h);
    ((!x & y) | (!(x ^ y) & !d)) & h
}

/// Expands a lane-MSB mask (as produced by [`lanes_lt_mask`]) to a mask
/// covering every bit of each flagged lane.
#[inline]
pub fn expand_msb_mask(msb: u64, width: CellWidth) -> u64 {
    // Shift each flag down to its lane's least-significant bit, then
    // multiply by the all-ones lane value: the partial products occupy
    // disjoint lanes, so the multiply is exact.
    (msb >> (width.bits() - 1)).wrapping_mul(width.cell_max())
}

/// Per-lane `a ≤ b` over whole packed rows of the given uniform width.
///
/// Padding lanes (zero in both rows) compare equal, so the check is
/// exactly the cell-wise comparison.
#[inline]
pub fn row_le_words(a: &[u64], b: &[u64], width: CellWidth) -> bool {
    debug_assert_eq!(a.len(), b.len());
    a.iter()
        .zip(b)
        .all(|(&wa, &wb)| lanes_lt_mask(wb, wa, width) == 0)
}

/// How the place counts of one net are laid out in a packed word buffer.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct RowLayout {
    places: usize,
    kind: LayoutKind,
}

/// Uniform (whole-net) vs per-place cell widths.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
enum LayoutKind {
    /// Every place uses the same width — the exploration-engine layout,
    /// eligible for the SWAR fast path.
    Uniform(CellWidth),
    /// Each place has its own width — the Karp–Miller store layout, where
    /// ω forces individual places wide without inflating the whole row.
    PerPlace {
        widths: Vec<CellWidth>,
        /// Byte offset of each place's cell, aligned to the cell's width.
        offsets: Vec<usize>,
        /// Total payload bytes (before padding to a word boundary).
        bytes: usize,
    },
}

impl RowLayout {
    /// A layout storing every place at the same width.
    pub fn uniform(places: usize, width: CellWidth) -> RowLayout {
        RowLayout {
            places,
            kind: LayoutKind::Uniform(width),
        }
    }

    /// A layout with an individual width per place.
    ///
    /// Cells are placed in place order at the next offset aligned to
    /// their own width, so no cell straddles a word boundary.
    pub fn per_place(widths: Vec<CellWidth>) -> RowLayout {
        let mut offsets = Vec::with_capacity(widths.len());
        let mut at = 0usize;
        for &w in &widths {
            let align = w.bytes();
            at = at.next_multiple_of(align);
            offsets.push(at);
            at += align;
        }
        RowLayout {
            places: widths.len(),
            kind: LayoutKind::PerPlace {
                widths,
                offsets,
                bytes: at,
            },
        }
    }

    /// Number of places (cells) per row.
    #[inline]
    pub fn places(&self) -> usize {
        self.places
    }

    /// `true` for the degenerate uncompressed layout (one `u64` per
    /// place), which is bit-identical to the historical representation.
    #[inline]
    pub fn is_u64_uniform(&self) -> bool {
        matches!(self.kind, LayoutKind::Uniform(CellWidth::U64))
    }

    /// The uniform cell width, or `None` for per-place layouts.
    #[inline]
    pub fn uniform_width(&self) -> Option<CellWidth> {
        match self.kind {
            LayoutKind::Uniform(w) => Some(w),
            LayoutKind::PerPlace { .. } => None,
        }
    }

    /// The width of one place's cell.
    #[inline]
    pub fn width_of(&self, place: usize) -> CellWidth {
        match &self.kind {
            LayoutKind::Uniform(w) => *w,
            LayoutKind::PerPlace { widths, .. } => widths[place],
        }
    }

    /// Payload bytes per row (excluding padding up to a word boundary).
    #[inline]
    pub fn payload_bytes(&self) -> usize {
        match &self.kind {
            LayoutKind::Uniform(w) => self.places * w.bytes(),
            LayoutKind::PerPlace { bytes, .. } => *bytes,
        }
    }

    /// Stored `u64` words per row (payload rounded up to whole words).
    #[inline]
    pub fn words_per_row(&self) -> usize {
        self.payload_bytes().div_ceil(8)
    }

    /// Stored bytes per row including word padding — the honest
    /// `bytes_per_node` figure the benches report.
    #[inline]
    pub fn stored_bytes_per_row(&self) -> usize {
        self.words_per_row() * 8
    }

    /// Byte offset of a place's cell within the row.
    #[inline]
    fn offset_of(&self, place: usize) -> usize {
        match &self.kind {
            LayoutKind::Uniform(w) => place * w.bytes(),
            LayoutKind::PerPlace { offsets, .. } => offsets[place],
        }
    }

    /// Reads one place's count from a packed row.
    #[inline]
    pub fn get(&self, row: &[u64], place: usize) -> u64 {
        let width = self.width_of(place);
        let offset = self.offset_of(place);
        let shift = (offset % 8) as u32 * 8;
        (row[offset / 8] >> shift) & width.cell_max()
    }

    /// Writes one place's count into a packed row.
    ///
    /// # Panics
    /// If `value` does not fit the place's cell width.
    #[inline]
    pub fn set(&self, row: &mut [u64], place: usize, value: u64) {
        let width = self.width_of(place);
        assert!(
            value <= width.cell_max(),
            "packed cell overflow: value {value} exceeds {width:?} at place {place}"
        );
        let offset = self.offset_of(place);
        let shift = (offset % 8) as u32 * 8;
        let word = &mut row[offset / 8];
        *word = (*word & !(width.cell_max() << shift)) | (value << shift);
    }

    /// Packs a dense `u64` count row, appending `words_per_row` words to
    /// `out`. Returns `false` (with `out` restored) when any count
    /// exceeds its cell width — the caller's cue to promote the layout or
    /// treat the row as unrepresentable (e.g. an arena lookup miss).
    pub fn try_pack_into(&self, cells: &[u64], out: &mut Vec<u64>) -> bool {
        debug_assert_eq!(cells.len(), self.places);
        let start = out.len();
        out.resize(start + self.words_per_row(), 0);
        for (place, &value) in cells.iter().enumerate() {
            if value > self.width_of(place).cell_max() {
                out.truncate(start);
                return false;
            }
            self.set(&mut out[start..], place, value);
        }
        true
    }

    /// Packs a dense `u64` count row into a fresh buffer.
    ///
    /// # Panics
    /// If any count exceeds its cell width; use [`RowLayout::try_pack_into`]
    /// when overflow is a reachable condition.
    pub fn pack(&self, cells: &[u64]) -> Vec<u64> {
        let mut out = Vec::with_capacity(self.words_per_row());
        assert!(
            self.try_pack_into(cells, &mut out),
            "packed cell overflow: row does not fit layout {self:?}"
        );
        out
    }

    /// Unpacks a packed row back to one `u64` per place, appending to
    /// `out`.
    pub fn unpack_into(&self, row: &[u64], out: &mut Vec<u64>) {
        debug_assert_eq!(row.len(), self.words_per_row());
        out.reserve(self.places);
        for place in 0..self.places {
            out.push(self.get(row, place));
        }
    }

    /// Unpacks a packed row into a fresh dense `u64` count vector.
    pub fn unpack(&self, row: &[u64]) -> Vec<u64> {
        let mut out = Vec::with_capacity(self.places);
        self.unpack_into(row, &mut out);
        out
    }

    /// Sum of all place counts in a packed row.
    pub fn row_total(&self, row: &[u64]) -> u64 {
        (0..self.places).map(|place| self.get(row, place)).sum()
    }
}

/// A transition pre-compiled against one uniform [`RowLayout`]: the
/// sparse pre/post multisets re-expressed as packed words, so the hot
/// loops touch whole words instead of individual places.
#[derive(Debug, Clone)]
pub struct PackedTransition {
    width: CellWidth,
    /// Words with at least one nonzero `pre` lane: `(word index, packed
    /// pre counts)`. Enabledness is `no lane of row < pre` per entry.
    pre_words: Vec<(u32, u64)>,
    /// Words touched by firing: `(word index, packed pre to subtract,
    /// packed post to add)`.
    delta: Vec<(u32, u64, u64)>,
    /// Words touched by a backward-cover step: `(word index, packed post
    /// to saturating-subtract, packed pre to add)`.
    backward: Vec<(u32, u64, u64)>,
}

impl PackedTransition {
    /// Compiles sparse `(place, count)` pre/post multisets against a
    /// uniform layout.
    ///
    /// # Panics
    /// If the layout is per-place, or a transition count exceeds the
    /// layout's cell width (the width-selection bound covers every
    /// transition count by construction, so this is a compile-time
    /// programming error, not a runtime condition).
    pub fn compile(
        layout: &RowLayout,
        pre: &[(u32, u64)],
        post: &[(u32, u64)],
    ) -> PackedTransition {
        let width = layout
            .uniform_width()
            .expect("packed transitions require a uniform layout");
        let words = layout.words_per_row();
        let pack_sparse = |entries: &[(u32, u64)]| -> Vec<u64> {
            let mut packed = vec![0u64; words];
            for &(place, count) in entries {
                assert!(
                    count <= width.cell_max(),
                    "transition count {count} exceeds layout width {width:?}"
                );
                layout.set(&mut packed, place as usize, count);
            }
            packed
        };
        let pre_packed = pack_sparse(pre);
        let post_packed = pack_sparse(post);
        let mut pre_words = Vec::new();
        let mut delta = Vec::new();
        let mut backward = Vec::new();
        for word in 0..words {
            let p = pre_packed[word];
            let q = post_packed[word];
            if p != 0 {
                pre_words.push((word as u32, p));
            }
            if p != 0 || q != 0 {
                delta.push((word as u32, p, q));
                backward.push((word as u32, q, p));
            }
        }
        PackedTransition {
            width,
            pre_words,
            delta,
            backward,
        }
    }

    /// Enabled check on a packed row: every `pre` lane must be ≤ the
    /// row's lane, decided one word (up to 8 lanes) per compare.
    #[inline]
    pub fn is_enabled_words(&self, row: &[u64]) -> bool {
        self.pre_words
            .iter()
            .all(|&(word, pre)| lanes_lt_mask(row[word as usize], pre, self.width) == 0)
    }

    /// Fires on a packed row the caller has already checked enabled:
    /// `dst` is overwritten with `src − pre + post`.
    ///
    /// EXACT: the width rule bounds every materialisable count at the
    /// layout's cell max, and enabledness bounds `pre` below each lane,
    /// so the word-level wrapping arithmetic is exact lanewise — no
    /// borrow or carry can cross a lane boundary (see the module docs).
    #[inline]
    pub fn fire_words(&self, src: &[u64], dst: &mut Vec<u64>) {
        debug_assert!(self.is_enabled_words(src));
        dst.clear();
        dst.extend_from_slice(src);
        for &(word, sub, add) in &self.delta {
            let cell = &mut dst[word as usize];
            *cell = cell.wrapping_sub(sub).wrapping_add(add);
        }
    }

    /// One backward-coverability step on a packed row: `dst` is
    /// overwritten with `max(target − post, 0) + pre`, lanewise.
    ///
    /// Returns `false` when adding `pre` would overflow a lane — the
    /// caller's cue to retry the whole saturation at the next wider
    /// layout (counts in backward candidates are not bounded by the
    /// forward reachability bound).
    ///
    /// EXACT: both wrapping steps are guarded lanewise — the subtraction
    /// masks prospective underflows to zero first, the addition bails out
    /// via the `lanes_lt_mask` overflow probe before wrapping — so
    /// neither can cross a lane boundary.
    #[inline]
    pub fn backward_cover_words(&self, target: &[u64], dst: &mut Vec<u64>) -> bool {
        dst.clear();
        dst.extend_from_slice(target);
        for &(word, post, pre) in &self.backward {
            let cell = &mut dst[word as usize];
            // Saturating lanewise subtraction: zero out the lanes that
            // would underflow in both operands, then subtract freely.
            let under = expand_msb_mask(lanes_lt_mask(*cell, post, self.width), self.width);
            let sat = (*cell & !under).wrapping_sub(post & !under);
            // Overflow-checked lanewise addition: a + b > max ⟺
            // a > max − b ⟺ lanewise `!b < a` (padding lanes of `!pre`
            // are all-ones, so they can never flag).
            if lanes_lt_mask(!pre, sat, self.width) != 0 {
                return false;
            }
            *cell = sat.wrapping_add(pre);
        }
        true
    }
}

static PACKED_OVERRIDE: AtomicBool = AtomicBool::new(true);
static PACKED_INIT: OnceLock<bool> = OnceLock::new();

fn packed_from_env() -> bool {
    match crate::gates::read(crate::gates::PP_PETRI_PACKED) {
        Some(value) => from_env_value(&value),
        None => true,
    }
}

/// Parses a `PP_PETRI_PACKED` value: `0` (or `off`/`false`, trimmed,
/// case-insensitive) disables packing; anything else leaves it on.
fn from_env_value(value: &str) -> bool {
    let v = value.trim();
    !(v == "0" || v.eq_ignore_ascii_case("off") || v.eq_ignore_ascii_case("false"))
}

/// Whether packed row storage is enabled (the default).
///
/// Initialised once from the `PP_PETRI_PACKED` environment variable
/// (`PP_PETRI_PACKED=0` forces the uncompressed `u64` layout — the
/// fallback path CI's determinism matrix exercises), then adjustable
/// in-process via [`set_packed_enabled`].
pub fn packed_enabled() -> bool {
    let _ = PACKED_INIT.get_or_init(|| {
        let initial = packed_from_env();
        // relaxed: standalone bool gate; OnceLock publishes the init and
        // no other memory is ordered against the flag.
        PACKED_OVERRIDE.store(initial, Ordering::Relaxed);
        initial
    });
    // relaxed: standalone bool gate read, see the store above.
    PACKED_OVERRIDE.load(Ordering::Relaxed)
}

/// Overrides the packed-storage gate in-process.
///
/// Exists so bit-identity harnesses (`bench_sparse_dense --check`) can
/// build the same instance packed and unpacked in one process and assert
/// the graphs identical; tests must serialise around it.
pub fn set_packed_enabled(enabled: bool) {
    let _ = PACKED_INIT.get_or_init(packed_from_env);
    // relaxed: standalone bool gate; callers serialise around the flip
    // (see GATE_TEST_LOCK), so no cross-thread ordering is implied here.
    PACKED_OVERRIDE.store(enabled, Ordering::Relaxed);
}

/// Serialises unit tests that flip the process-global packed gate via
/// [`set_packed_enabled`]: hold this lock for the whole save/toggle/restore
/// window so concurrent tests never observe a mid-test override.
#[cfg(test)]
pub(crate) static GATE_TEST_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

#[cfg(test)]
mod tests {
    use super::*;

    const WIDTHS: [CellWidth; 4] = [
        CellWidth::U8,
        CellWidth::U16,
        CellWidth::U32,
        CellWidth::U64,
    ];

    /// Reference scalar implementation of the per-lane comparison.
    fn lanes_lt_reference(x: u64, y: u64, width: CellWidth) -> u64 {
        let mut mask = 0u64;
        for lane in 0..width.lanes() {
            let shift = (lane as u32) * width.bits();
            let xv = (x >> shift) & width.cell_max();
            let yv = (y >> shift) & width.cell_max();
            if xv < yv {
                mask |= width.msb_pattern() & (width.cell_max() << shift);
            }
        }
        mask
    }

    #[test]
    fn fitting_picks_narrowest_width() {
        assert_eq!(CellWidth::fitting(0), CellWidth::U8);
        assert_eq!(CellWidth::fitting(255), CellWidth::U8);
        assert_eq!(CellWidth::fitting(256), CellWidth::U16);
        assert_eq!(CellWidth::fitting(u16::MAX as u64), CellWidth::U16);
        assert_eq!(CellWidth::fitting(u16::MAX as u64 + 1), CellWidth::U32);
        assert_eq!(CellWidth::fitting(u32::MAX as u64), CellWidth::U32);
        assert_eq!(CellWidth::fitting(u32::MAX as u64 + 1), CellWidth::U64);
        assert_eq!(CellWidth::fitting(u64::MAX), CellWidth::U64);
    }

    #[test]
    fn lanes_lt_matches_scalar_reference() {
        // Deterministic pseudo-random word pairs via a splitmix step.
        let mut state = 0x9e37_79b9_97f4_a7c5u64;
        let mut next = || {
            // pp-lint: allow(exact-wrap) — splitmix mixer: wrap-around
            // over the full u64 is the intended mixing arithmetic.
            state = state.wrapping_add(0x9e37_79b9_97f4_a7c5);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        };
        for width in WIDTHS {
            for _ in 0..2000 {
                let x = next();
                let y = next();
                assert_eq!(
                    lanes_lt_mask(x, y, width),
                    lanes_lt_reference(x, y, width),
                    "width {width:?}, x={x:#x}, y={y:#x}"
                );
            }
            // Boundary words.
            for &x in &[0u64, u64::MAX, width.msb_pattern(), !width.msb_pattern()] {
                for &y in &[0u64, u64::MAX, width.msb_pattern(), !width.msb_pattern()] {
                    assert_eq!(
                        lanes_lt_mask(x, y, width),
                        lanes_lt_reference(x, y, width),
                        "width {width:?}, x={x:#x}, y={y:#x}"
                    );
                }
            }
        }
    }

    #[test]
    fn uniform_pack_round_trips() {
        for width in WIDTHS {
            let layout = RowLayout::uniform(5, width);
            let cells = [0u64, 1, 2, width.cell_max(), width.cell_max() - 1];
            let packed = layout.pack(&cells);
            assert_eq!(packed.len(), layout.words_per_row());
            assert_eq!(layout.unpack(&packed), cells);
            for (place, &value) in cells.iter().enumerate() {
                assert_eq!(layout.get(&packed, place), value);
            }
            // Totals on a row whose sum fits u64 (the boundary row above
            // overflows the strict sum for U64 cells).
            let small = [0u64, 1, 2, 3, 4];
            assert_eq!(layout.row_total(&layout.pack(&small)), 10);
        }
    }

    #[test]
    fn pack_rejects_overflowing_cells() {
        for width in [CellWidth::U8, CellWidth::U16, CellWidth::U32] {
            let layout = RowLayout::uniform(3, width);
            let mut out = vec![7u64; 2];
            assert!(!layout.try_pack_into(&[0, width.cell_max() + 1, 0], &mut out));
            assert_eq!(out, vec![7u64; 2], "failed pack must restore the buffer");
        }
    }

    #[test]
    fn u64_uniform_layout_is_the_identity() {
        let layout = RowLayout::uniform(4, CellWidth::U64);
        assert!(layout.is_u64_uniform());
        let cells = [u64::MAX, 0, 42, 7];
        assert_eq!(layout.pack(&cells), cells);
        assert_eq!(layout.words_per_row(), 4);
    }

    #[test]
    fn per_place_layout_aligns_and_round_trips() {
        let layout = RowLayout::per_place(vec![
            CellWidth::U8,
            CellWidth::U32, // must skip to offset 4
            CellWidth::U8,
            CellWidth::U16, // must skip to offset 10
            CellWidth::U64, // must skip to offset 16
        ]);
        assert_eq!(layout.payload_bytes(), 24);
        assert_eq!(layout.words_per_row(), 3);
        let cells = [255u64, u32::MAX as u64, 9, u16::MAX as u64, u64::MAX];
        let packed = layout.pack(&cells);
        assert_eq!(layout.unpack(&packed), cells);
    }

    #[test]
    fn packed_transition_agrees_with_scalar_firing() {
        // pre = {p0: 2, p2: 1}, post = {p1: 3, p2: 1, p3: 200}
        let pre = [(0u32, 2u64), (2, 1)];
        let post = [(1u32, 3u64), (2, 1), (3, 200)];
        for width in WIDTHS {
            let layout = RowLayout::uniform(4, width);
            let t = PackedTransition::compile(&layout, &pre, &post);
            let cases: [([u64; 4], bool); 4] = [
                ([2, 0, 1, 0], true),
                ([2, 0, 0, 0], false),
                ([1, 50, 9, 3], false),
                ([10, 1, 2, 55], true),
            ];
            for (cells, enabled) in cases {
                let row = layout.pack(&cells);
                assert_eq!(t.is_enabled_words(&row), enabled, "{width:?} {cells:?}");
                if enabled {
                    let mut out = Vec::new();
                    t.fire_words(&row, &mut out);
                    let expect = [cells[0] - 2, cells[1] + 3, cells[2], cells[3] + 200];
                    assert_eq!(layout.unpack(&out), expect, "{width:?} {cells:?}");
                }
            }
        }
    }

    #[test]
    fn backward_cover_saturates_and_detects_overflow() {
        // pre = {p0: 2}, post = {p1: 3}
        let pre = [(0u32, 2u64)];
        let post = [(1u32, 3u64)];
        for width in WIDTHS {
            let layout = RowLayout::uniform(3, width);
            let t = PackedTransition::compile(&layout, &pre, &post);
            // target {p0: 1, p1: 1}: p1 saturates to 0, p0 gains pre.
            let target = layout.pack(&[1, 1, 5]);
            let mut out = Vec::new();
            assert!(t.backward_cover_words(&target, &mut out));
            assert_eq!(layout.unpack(&out), [3, 0, 5]);
            // Near the cell max the pre-addition overflows the lane.
            if width != CellWidth::U64 {
                let target = layout.pack(&[width.cell_max(), 0, 0]);
                assert!(!t.backward_cover_words(&target, &mut out));
            }
        }
        // u64 lanes overflow too, at the numeric top.
        let layout = RowLayout::uniform(3, CellWidth::U64);
        let t = PackedTransition::compile(&layout, &pre, &post);
        let target = layout.pack(&[u64::MAX, 0, 0]);
        let mut out = Vec::new();
        assert!(!t.backward_cover_words(&target, &mut out));
    }

    #[test]
    fn row_le_words_matches_cellwise_compare() {
        for width in [CellWidth::U8, CellWidth::U16] {
            let layout = RowLayout::uniform(5, width);
            let a = layout.pack(&[1, 2, 3, 0, 5]);
            let b = layout.pack(&[1, 2, 4, 0, 5]);
            assert!(row_le_words(&a, &b, width));
            assert!(!row_le_words(&b, &a, width));
            assert!(row_le_words(&a, &a, width));
        }
    }

    #[test]
    fn env_value_parsing() {
        assert!(!from_env_value("0"));
        assert!(!from_env_value(" off "));
        assert!(!from_env_value("FALSE"));
        assert!(from_env_value("1"));
        assert!(from_env_value(""));
        assert!(from_env_value("yes"));
    }
}
