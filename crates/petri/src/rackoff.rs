//! Rackoff bounds for coverability and stabilization (Lemmas 5.3 and 5.4).

use crate::PetriNet;
use pp_bigint::Nat;
use pp_multiset::Multiset;

/// The Rackoff bound of Lemma 5.3: if `ρ` is `T`-coverable from `α`, then it
/// is coverable by a word of length at most `(‖ρ‖∞ + ‖T‖∞)^(|P|^|P|)`.
///
/// The exponent `|P|^|P|` is astronomically large already for a handful of
/// places, hence the [`Nat`] return type.
///
/// ```
/// use pp_bigint::Nat;
/// use pp_multiset::Multiset;
/// use pp_petri::{rackoff::covering_length_bound, PetriNet, Transition};
///
/// let net = PetriNet::from_transitions([Transition::pairwise("a", "a", "a", "b")]);
/// let bound = covering_length_bound(&net, &Multiset::unit("b"));
/// assert_eq!(bound, Nat::from(3u64).pow(4)); // (1 + 2)^(2^2)
/// ```
#[must_use]
pub fn covering_length_bound<P: Clone + Ord>(net: &PetriNet<P>, target: &Multiset<P>) -> Nat {
    let d = net.num_places() as u64;
    let base = Nat::from(target.sup_norm() + net.sup_norm());
    base.pow_nat(&Nat::from(d).pow(d))
}

/// The stabilization threshold `h` of Lemma 5.4:
/// `h ≥ ‖T‖∞ (1 + ‖T‖∞)^(|P|^|P|)`.
///
/// Any `(T, F)`-stabilized configuration `ρ` is characterized by its values
/// below `h`: every configuration agreeing with (or below) `ρ` on the places
/// where `ρ < h` is also stabilized.
#[must_use]
pub fn stabilization_threshold<P: Clone + Ord>(net: &PetriNet<P>) -> Nat {
    let d = net.num_places() as u64;
    let norm = net.sup_norm();
    Nat::from(norm) * Nat::from(1 + norm).pow_nat(&Nat::from(d).pow(d))
}

/// A `u64`-saturating version of [`stabilization_threshold`] for use inside
/// concrete explorations (where counts are machine integers anyway).
#[must_use]
pub fn stabilization_threshold_saturating<P: Clone + Ord>(net: &PetriNet<P>) -> u64 {
    stabilization_threshold(net).saturating_u64()
}

/// The per-place "small values" region of Lemma 5.4: `R = {p : ρ(p) < h}`.
///
/// `h` is passed as a saturating `u64`; places whose count is at least `h`
/// are the "large" places that can be pumped without affecting stability.
#[must_use]
pub fn small_value_places<P: Clone + Ord>(
    net: &PetriNet<P>,
    config: &Multiset<P>,
    threshold: u64,
) -> std::collections::BTreeSet<P> {
    net.places()
        .iter()
        .filter(|p| config.get(p) < threshold)
        .cloned()
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Transition;

    fn ms(pairs: &[(&'static str, u64)]) -> Multiset<&'static str> {
        Multiset::from_pairs(pairs.iter().copied())
    }

    #[test]
    fn covering_length_bound_small_net() {
        let net = PetriNet::from_transitions([Transition::pairwise("a", "a", "a", "b")]);
        // |P| = 2, ‖T‖∞ = 2 (the pre has two a's)... wait: pre = 2·a so sup-norm 2.
        let bound = covering_length_bound(&net, &Multiset::unit("b"));
        assert_eq!(bound, Nat::from(3u64).pow(4));
    }

    #[test]
    fn covering_length_bound_grows_with_places() {
        let small = PetriNet::from_transitions([Transition::pairwise("a", "a", "a", "b")]);
        let mut big = small.clone();
        big.add_place("c");
        big.add_place("d");
        let target = Multiset::unit("b");
        assert!(covering_length_bound(&small, &target) < covering_length_bound(&big, &target));
    }

    #[test]
    fn empty_net_has_trivial_bounds() {
        let net: PetriNet<&str> = PetriNet::new();
        // Base (‖ρ‖∞ + ‖T‖∞) = 0 and exponent 0⁰ = 1: the bound degenerates to
        // zero, which is consistent (the empty word covers the empty target).
        assert_eq!(covering_length_bound(&net, &Multiset::new()), Nat::zero());
        assert_eq!(stabilization_threshold(&net), Nat::zero());
    }

    #[test]
    fn stabilization_threshold_value() {
        let net = PetriNet::from_transitions([Transition::pairwise("a", "b", "c", "d")]);
        // ‖T‖∞ = 1, |P| = 4: h = 1 · 2^(4^4) = 2^256.
        assert_eq!(stabilization_threshold(&net), Nat::from(2u64).pow(256));
        assert_eq!(stabilization_threshold_saturating(&net), u64::MAX);
    }

    #[test]
    fn small_value_places_partition() {
        let net = PetriNet::from_transitions([Transition::pairwise("a", "b", "c", "d")]);
        let config = ms(&[("a", 10), ("b", 1)]);
        let small = small_value_places(&net, &config, 5);
        assert!(small.contains(&"b"));
        assert!(small.contains(&"c"));
        assert!(small.contains(&"d"));
        assert!(!small.contains(&"a"));
    }
}
