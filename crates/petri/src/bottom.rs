//! Theorem 6.1: reaching bottom configurations with short executions.
//!
//! Theorem 6.1 of the paper states that from any configuration `ρ` one can
//! reach, by words of doubly-exponentially bounded length, a configuration `α`
//! and then a configuration `β` such that for some set of places `Q`:
//!
//! * `α|_Q = β|_Q` and `α(p) < β(p)` for every place outside `Q` (so the
//!   execution from `α` to `β` can be *pumped* to inflate the places outside
//!   `Q` arbitrarily),
//! * `α|_Q` is a `T|_Q`-bottom configuration whose component has at most `b`
//!   elements, where `b = (4 + 4‖T‖∞ + 2‖ρ‖∞)^(dᵈ(1+(2+dᵈ)^(d+1)))`.
//!
//! This module provides the bound ([`theorem_6_1_bound`]) and an executable
//! witness search ([`find_bottom_witness`]) used by the Section 8 pipeline of
//! the `pp-statecomplexity` crate. The witness search is exact on nets whose
//! reachability graph from `ρ` fits in the exploration limits (in particular
//! on conservative nets started from small configurations, which is the case
//! the pipeline exercises).

use crate::component::{is_bottom, reach_bottom_in};
use crate::session::Analysis;
use crate::{ExplorationLimits, PetriNet};
use pp_bigint::{Nat, PowerBound};
use pp_multiset::Multiset;
use std::collections::BTreeSet;

/// The exponent `dᵈ(1 + (2 + dᵈ)^(d+1))` of Theorem 6.1.
#[must_use]
pub fn theorem_6_1_exponent(d: u64) -> Nat {
    if d == 0 {
        return Nat::zero();
    }
    let dd = Nat::from(d).pow(d);
    let inner = (Nat::from(2u64) + &dd).pow(d + 1);
    dd * (Nat::one() + inner)
}

/// The bound `b` of Theorem 6.1 for the net `net` and configuration `rho`,
/// in symbolic form (the exponent is astronomically large for `d ≥ 4`).
#[must_use]
pub fn theorem_6_1_bound<P: Clone + Ord>(net: &PetriNet<P>, rho: &Multiset<P>) -> PowerBound {
    let d = net.num_places() as u64;
    let base = Nat::from(4 + 4 * net.sup_norm() + 2 * rho.sup_norm());
    PowerBound::new(base, theorem_6_1_exponent(d))
}

/// A witness for Theorem 6.1: words `σ`, `w`, a set of places `Q` and
/// configurations `α`, `β` satisfying the theorem's conditions.
#[derive(Debug, Clone)]
pub struct BottomWitness<P: Ord> {
    /// Word (transition indices) with `ρ --σ--> α`.
    pub sigma: Vec<usize>,
    /// Word (transition indices) with `α --w--> β`.
    pub w: Vec<usize>,
    /// The set `Q`: places on which `α` and `β` agree and whose restriction is bottom.
    pub q_places: BTreeSet<P>,
    /// Places outside `Q` (strictly pumped by `w`).
    pub pumped_places: BTreeSet<P>,
    /// The configuration `α`.
    pub alpha: Multiset<P>,
    /// The configuration `β`.
    pub beta: Multiset<P>,
    /// Cardinality of the `T|_Q`-component of `α|_Q`.
    pub component_size: usize,
}

impl<P: Clone + Ord> BottomWitness<P> {
    /// Checks every condition of Theorem 6.1 on this witness.
    ///
    /// Returns `false` (rather than panicking) when a condition fails or when
    /// the bottom check cannot be decided within `limits`.
    #[must_use]
    pub fn validate(
        &self,
        net: &PetriNet<P>,
        rho: &Multiset<P>,
        limits: &ExplorationLimits,
    ) -> bool {
        // ρ --σ--> α --w--> β.
        if net.fire_word(rho, &self.sigma) != Some(self.alpha.clone()) {
            return false;
        }
        if net.fire_word(&self.alpha, &self.w) != Some(self.beta.clone()) {
            return false;
        }
        // α|Q = β|Q and α(p) < β(p) outside Q.
        if self.alpha.restrict(&self.q_places) != self.beta.restrict(&self.q_places) {
            return false;
        }
        for p in net.places() {
            if !self.q_places.contains(p) && self.alpha.get(p) >= self.beta.get(p) {
                return false;
            }
        }
        // α|Q is T|Q-bottom.
        let restricted = net.restrict(&self.q_places);
        let alpha_q = self.alpha.restrict(&self.q_places);
        matches!(is_bottom(&restricted, &alpha_q, limits), Some(true))
    }

    /// Checks the quantitative part of Theorem 6.1: all of `|σ|`, `|w|`,
    /// `d·‖α‖∞`, `d·‖β‖∞` and the component size are at most `b`.
    #[must_use]
    pub fn within_bound<P2: Clone + Ord>(&self, net: &PetriNet<P2>, bound: &PowerBound) -> bool {
        let d = net.num_places() as u64;
        let quantities = [
            Nat::from(self.sigma.len() as u64),
            Nat::from(self.w.len() as u64),
            Nat::from(d * self.alpha.sup_norm()),
            Nat::from(d * self.beta.sup_norm()),
            Nat::from(self.component_size as u64),
        ];
        quantities
            .iter()
            .all(|q| PowerBound::exact(q.clone()).approx_cmp(bound) != std::cmp::Ordering::Greater)
    }
}

/// Searches for a Theorem 6.1 witness from `rho`.
///
/// The search prefers witnesses with a *proper* pumping set (some place
/// strictly increases from `α` to `β`); when the reachability graph from `rho`
/// has no such pair — which is always the case for conservative nets, whose
/// reachable configurations all have the same number of agents — it falls back
/// to the degenerate witness `Q = P`, `β = α`, `w = ε` on a bottom
/// configuration reachable from `rho` (which satisfies the theorem).
///
/// Returns `None` when no witness is found within `limits`: the pumping
/// search works on the (possibly truncated) reachability graph — any witness
/// it returns is validated by re-firing the words, so truncation can only
/// cause a miss, never an unsound answer — while the degenerate fallback
/// additionally requires the exploration to be complete.
#[must_use]
pub fn find_bottom_witness<P: Clone + Ord>(
    net: &PetriNet<P>,
    rho: &Multiset<P>,
    limits: &ExplorationLimits,
) -> Option<BottomWitness<P>> {
    find_bottom_witness_in(&mut Analysis::new(net), rho, limits)
}

/// [`find_bottom_witness`] on an existing [`Analysis`] session.
///
/// The session is what makes the two-phase search cheap: the truncated
/// pumping exploration (strategy A) and the full-limit bottom search
/// (strategy B) start from the *same* initial configuration, so strategy B
/// [resumes](crate::ReachabilityGraph::resume) the pump graph in place —
/// re-expanding only its budget frontier — instead of rebuilding the
/// reachability set from scratch.
#[must_use]
pub fn find_bottom_witness_in<P: Clone + Ord>(
    analysis: &mut Analysis<P>,
    rho: &Multiset<P>,
    limits: &ExplorationLimits,
) -> Option<BottomWitness<P>> {
    let net = analysis.net().clone();
    // Strategy A: look for a pumpable pair α ≤ β (α ≠ β) whose agreement set
    // Q yields a bottom restriction. Pumpable pairs only exist when the net
    // can grow, in which case the reachability graph is infinite anyway, so
    // this search runs on a deliberately small truncated exploration.
    const PUMP_SEARCH_NODE_LIMIT: usize = 1_500;
    let pump_limits = ExplorationLimits {
        max_configurations: limits.max_configurations.min(PUMP_SEARCH_NODE_LIMIT),
        ..*limits
    };
    let graph = analysis
        .reachability([rho.clone()])
        .limits(pump_limits)
        .run();
    if let Some(start) = graph.id_of(rho) {
        for alpha_id in graph.ids() {
            let alpha = graph.node(alpha_id).clone();
            for &beta_id in graph.reachable_from(alpha_id).iter() {
                if beta_id == alpha_id {
                    continue;
                }
                let beta = graph.node(beta_id).clone();
                if !alpha.le(&beta) || alpha == beta {
                    continue;
                }
                let q_places: BTreeSet<P> = net
                    .places()
                    .iter()
                    .filter(|p| alpha.get(p) == beta.get(p))
                    .cloned()
                    .collect();
                let pumped: BTreeSet<P> = net
                    .places()
                    .iter()
                    .filter(|p| !q_places.contains(*p))
                    .cloned()
                    .collect();
                if pumped.is_empty() {
                    continue;
                }
                let restricted = net.restrict(&q_places);
                let alpha_q = alpha.restrict(&q_places);
                // The bottom check and component of the witness are small by
                // construction (their size is what Theorem 6.1 bounds), so
                // they are explored under the same truncated limits as the
                // pumping search: a candidate needing more is simply skipped.
                if is_bottom(&restricted, &alpha_q, &pump_limits) != Some(true) {
                    continue;
                }
                let Some(component_size) =
                    crate::component::component_size(&restricted, &alpha_q, &pump_limits)
                else {
                    continue;
                };
                let (_, sigma) = graph.path_to(start, |id| id == alpha_id)?;
                let (_, w) = graph.path_to(alpha_id, |id| id == beta_id)?;
                return Some(BottomWitness {
                    sigma,
                    w,
                    q_places,
                    pumped_places: pumped,
                    alpha,
                    beta,
                    component_size,
                });
            }
        }
    }

    // Strategy B: degenerate witness on a reachable bottom configuration
    // (`reach_bottom_in` itself returns `None` when the exploration under
    // the caller's full limits is incomplete). The session resumes the
    // strategy-A pump graph here: `limits` dominates `pump_limits`, so only
    // the pump budget's frontier re-expands.
    drop(graph);
    let (alpha, sigma) = reach_bottom_in(analysis, rho, limits)?;
    let q_places: BTreeSet<P> = net.places().clone();
    let component_size = crate::component::component_size_in(analysis, &alpha, limits)?;
    Some(BottomWitness {
        sigma,
        w: Vec::new(),
        q_places,
        pumped_places: BTreeSet::new(),
        alpha: alpha.clone(),
        beta: alpha,
        component_size,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Transition;

    fn ms(pairs: &[(&'static str, u64)]) -> Multiset<&'static str> {
        Multiset::from_pairs(pairs.iter().copied())
    }

    #[test]
    fn exponent_values() {
        assert_eq!(theorem_6_1_exponent(0), Nat::zero());
        // d = 1: 1·(1 + 3²) = 10.
        assert_eq!(theorem_6_1_exponent(1), Nat::from(10u64));
        // d = 2: 4·(1 + 6³) = 4·217 = 868.
        assert_eq!(theorem_6_1_exponent(2), Nat::from(868u64));
    }

    #[test]
    fn bound_is_symbolic_for_large_nets() {
        let mut net: PetriNet<u32> = PetriNet::new();
        for p in 0..8u32 {
            net.add_place(p);
        }
        net.add_transition(Transition::pairwise(0, 1, 2, 3));
        let bound = theorem_6_1_bound(&net, &Multiset::unit(0u32));
        assert!(bound.to_nat(1 << 20).is_none());
        assert!(bound.approx_log2() > 1e7);
    }

    #[test]
    fn conservative_net_gets_degenerate_witness() {
        let net = PetriNet::from_transitions([
            Transition::pairwise("a", "a", "a", "b"),
            Transition::pairwise("a", "b", "b", "b"),
        ]);
        let rho = ms(&[("a", 3)]);
        let limits = ExplorationLimits::default();
        let witness = find_bottom_witness(&net, &rho, &limits).expect("witness exists");
        assert!(witness.validate(&net, &rho, &limits));
        assert!(witness.pumped_places.is_empty());
        assert_eq!(witness.alpha, ms(&[("b", 3)]));
        assert_eq!(witness.component_size, 1);
        let bound = theorem_6_1_bound(&net, &rho);
        assert!(witness.within_bound(&net, &bound));
    }

    #[test]
    fn non_conservative_net_gets_pumping_witness() {
        // a -> a + b pumps b while staying on the bottom component {a} of T|{a}.
        let net = PetriNet::from_transitions([Transition::new(
            ms(&[("a", 1)]),
            ms(&[("a", 1), ("b", 1)]),
        )]);
        let rho = ms(&[("a", 1)]);
        // The graph from rho is infinite; the pumping search still finds a
        // witness inside the truncated exploration.
        let limits = ExplorationLimits::with_max_agents(6);
        let witness = find_bottom_witness(&net, &rho, &limits).expect("witness exists");
        assert!(witness.validate(&net, &rho, &limits));
        assert!(witness.pumped_places.contains(&"b"));
        assert_eq!(witness.q_places, BTreeSet::from(["a"]));
        assert!(!witness.w.is_empty());
        assert!(witness.alpha.le(&witness.beta));
        let bound = theorem_6_1_bound(&net, &rho);
        assert!(witness.within_bound(&net, &bound));
    }

    #[test]
    fn degenerate_witness_when_no_pumping_exists() {
        // A conservative variant: a + cap -> a + b cannot pump because cap is
        // consumed, so the fallback witness with Q = P is returned.
        let capped = PetriNet::from_transitions([Transition::new(
            ms(&[("a", 1), ("cap", 1)]),
            ms(&[("a", 1), ("b", 1)]),
        )]);
        let rho = ms(&[("a", 1), ("cap", 4)]);
        let limits = ExplorationLimits::default();
        let witness = find_bottom_witness(&capped, &rho, &limits).expect("witness exists");
        assert!(witness.validate(&capped, &rho, &limits));
        assert!(witness.pumped_places.is_empty());
        assert_eq!(witness.alpha, ms(&[("a", 1), ("b", 4)]));
        let bound = theorem_6_1_bound(&capped, &rho);
        assert!(witness.within_bound(&capped, &bound));
    }

    #[test]
    fn witness_validation_rejects_corrupted_witnesses() {
        let net = PetriNet::from_transitions([
            Transition::pairwise("a", "a", "a", "b"),
            Transition::pairwise("a", "b", "b", "b"),
        ]);
        let rho = ms(&[("a", 3)]);
        let limits = ExplorationLimits::default();
        let mut witness = find_bottom_witness(&net, &rho, &limits).unwrap();
        witness.alpha = ms(&[("a", 3)]); // no longer matches sigma
        assert!(!witness.validate(&net, &rho, &limits));
    }

    #[test]
    fn bound_exponent_matches_manual_formula_for_small_d() {
        for d in 1..=3u64 {
            let dd = d.pow(d as u32);
            let manual = dd * (1 + (2 + dd).pow((d + 1) as u32));
            assert_eq!(theorem_6_1_exponent(d), Nat::from(manual));
        }
    }
}
