//! Coverability: forward bounded search and the exact backward algorithm.
//!
//! A configuration `ρ` is *`T`-coverable* from `α` if `α →* β ≥ ρ` for some
//! `β` (Section 5 of the paper). Coverability drives the characterization of
//! stabilized configurations (Lemma 5.4), so the suite provides two decision
//! procedures:
//!
//! * [`CoverabilityOracle`] — the classical backward algorithm over
//!   upward-closed sets. It is exact, requires no budget (termination follows
//!   from Dickson's lemma) and is the workhorse of the
//!   [`stabilized`](crate::stabilized) module.
//! * [`shortest_covering_word`] — a forward breadth-first search that returns
//!   an explicit *shortest* covering word, used by experiment E5 to compare
//!   actual covering-word lengths against Rackoff's bound (Lemma 5.3).

use crate::arena::ConfigArena;
use crate::engine::CompiledNet;
use crate::{ExplorationLimits, PetriNet, ReachabilityGraph};
use pp_multiset::Multiset;
use std::collections::VecDeque;

/// Component-wise `a ≤ b` on dense rows of equal width.
fn row_le(a: &[u64], b: &[u64]) -> bool {
    a.iter().zip(b).all(|(x, y)| x <= y)
}

/// Exact coverability decisions via the backward algorithm.
///
/// The oracle is built for a fixed net and target configuration; it computes
/// the finite basis of the upward-closed set `{α : α →* β ≥ target}` once and
/// then answers [`CoverabilityOracle::is_coverable_from`] queries by a simple
/// comparison against the basis.
///
/// # Examples
///
/// ```
/// use pp_multiset::Multiset;
/// use pp_petri::cover::CoverabilityOracle;
/// use pp_petri::{PetriNet, Transition};
///
/// // a + a -> a + b: covering one b needs at least two a (or a b already).
/// let net = PetriNet::from_transitions([Transition::pairwise("a", "a", "a", "b")]);
/// let oracle = CoverabilityOracle::build(&net, Multiset::unit("b"));
/// assert!(oracle.is_coverable_from(&Multiset::from_pairs([("a", 2u64)])));
/// assert!(!oracle.is_coverable_from(&Multiset::from_pairs([("a", 1u64)])));
/// ```
#[derive(Debug, Clone)]
pub struct CoverabilityOracle<P: Ord> {
    target: Multiset<P>,
    basis: Vec<Multiset<P>>,
    engine: CompiledNet<P>,
    dense_basis: Vec<Vec<u64>>,
}

impl<P: Clone + Ord> CoverabilityOracle<P> {
    /// Runs the backward coverability algorithm for `target` over `net`.
    ///
    /// The fixpoint runs on the dense engine: the net is compiled once and
    /// the basis is grown as dense rows with slice arithmetic. The
    /// returned oracle's [`basis`](Self::basis) is the set of minimal
    /// configurations from which `target` is coverable.
    #[must_use]
    pub fn build(net: &PetriNet<P>, target: Multiset<P>) -> Self {
        let engine = CompiledNet::compile_with_places(net, target.support().cloned());
        let dense_target = engine
            .to_dense(&target)
            .expect("target support is part of the compiled universe");
        // Minimal basis of the upward closure, grown backwards to fixpoint.
        let mut dense_basis: Vec<Vec<u64>> = vec![dense_target.clone()];
        let mut frontier: Vec<Vec<u64>> = vec![dense_target];
        let mut predecessor = Vec::new();
        while let Some(current) = frontier.pop() {
            for t in engine.transitions() {
                t.backward_cover_row(&current, &mut predecessor);
                // Keep only minimal elements.
                if dense_basis.iter().any(|b| row_le(b, &predecessor)) {
                    continue;
                }
                dense_basis.retain(|b| !row_le(&predecessor, b));
                dense_basis.push(predecessor.clone());
                frontier.push(predecessor.clone());
            }
        }
        let basis = dense_basis
            .iter()
            .map(|row| engine.to_sparse(row))
            .collect();
        CoverabilityOracle {
            target,
            basis,
            engine,
            dense_basis,
        }
    }

    /// The target configuration of the oracle.
    #[must_use]
    pub fn target(&self) -> &Multiset<P> {
        &self.target
    }

    /// The minimal configurations from which the target is coverable.
    #[must_use]
    pub fn basis(&self) -> &[Multiset<P>] {
        &self.basis
    }

    /// Returns `true` if the target is coverable from `config`.
    ///
    /// Places of `config` outside the compiled universe are ignored: no
    /// basis element populates them, so they never block a cover.
    #[must_use]
    pub fn is_coverable_from(&self, config: &Multiset<P>) -> bool {
        let row = self.engine.to_dense_lossy(config);
        self.dense_basis.iter().any(|b| row_le(b, &row))
    }
}

/// Forward coverability: returns `true` if `target` is coverable from `from`.
///
/// This is an exact decision (it delegates to the backward algorithm); use
/// [`shortest_covering_word`] when the witness word itself is needed.
#[must_use]
pub fn is_coverable<P: Clone + Ord>(
    net: &PetriNet<P>,
    from: &Multiset<P>,
    target: &Multiset<P>,
) -> bool {
    CoverabilityOracle::build(net, target.clone()).is_coverable_from(from)
}

/// A shortest covering word, found by forward breadth-first search.
///
/// Returns the word `σ` (as transition indices) of minimal length such that
/// `from --σ--> β ≥ target`, or `None` if no such word is found within
/// `limits`. Lemma 5.3 (Rackoff) bounds the length of the returned word by
/// `(‖target‖∞ + ‖T‖∞)^(|P|^|P|)`; experiment E5 compares the two.
///
/// Exploration prunes configurations already dominated by a visited one only
/// in the exact sense (identical configurations); for the small nets of the
/// experiments this is sufficient.
#[must_use]
pub fn shortest_covering_word<P: Clone + Ord>(
    net: &PetriNet<P>,
    from: &Multiset<P>,
    target: &Multiset<P>,
    limits: &ExplorationLimits,
) -> Option<Vec<usize>> {
    if target.le(from) {
        return Some(Vec::new());
    }
    let engine =
        CompiledNet::compile_with_places(net, from.support().chain(target.support()).cloned());
    let dense_from = engine
        .to_dense(from)
        .expect("source support is part of the compiled universe");
    let dense_target = engine
        .to_dense(target)
        .expect("target support is part of the compiled universe");

    let mut arena = ConfigArena::new(engine.num_places());
    // Per node: (parent id, transition fired from the parent).
    let mut parents: Vec<(usize, usize)> = Vec::new();
    let reconstruct = |parents: &[(usize, usize)], mut id: usize| {
        let mut word = Vec::new();
        while id != 0 {
            let (parent, transition) = parents[id];
            word.push(transition);
            id = parent;
        }
        word.reverse();
        word
    };

    let root = arena.intern(&dense_from);
    parents.push((0, usize::MAX));
    let mut queue: VecDeque<(usize, usize)> = VecDeque::from([(root.index(), 0)]);
    let mut src = Vec::new();
    let mut succ = Vec::new();
    while let Some((id, depth)) = queue.pop_front() {
        if arena.len() > limits.max_configurations {
            return None;
        }
        if let Some(max_depth) = limits.max_depth {
            if depth >= max_depth {
                continue;
            }
        }
        if let Some(max_agents) = limits.max_agents {
            if arena.total(crate::arena::ConfigId(id as u32)) > max_agents {
                continue;
            }
        }
        src.clear();
        src.extend_from_slice(arena.row(crate::arena::ConfigId(id as u32)));
        for (t, transition) in engine.transitions().iter().enumerate() {
            if !transition.fire_row(&src, &mut succ) {
                continue;
            }
            if arena.lookup(&succ).is_some() {
                continue;
            }
            let succ_id = arena.intern(&succ).index();
            parents.push((id, t));
            if row_le(&dense_target, &succ) {
                return Some(reconstruct(&parents, succ_id));
            }
            queue.push_back((succ_id, depth + 1));
        }
    }
    None
}

/// Covering words found by searching the pre-built reachability graph.
///
/// Convenience used by analyses that already hold a [`ReachabilityGraph`]:
/// returns a word from the graph node `from` to some node covering `target`.
#[must_use]
pub fn covering_word_in_graph<P: Clone + Ord>(
    graph: &ReachabilityGraph<P>,
    from: usize,
    target: &Multiset<P>,
) -> Option<Vec<usize>> {
    graph
        .path_to(from, |id| target.le(graph.node(id)))
        .map(|(_, word)| word)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Transition;

    fn ms(pairs: &[(&'static str, u64)]) -> Multiset<&'static str> {
        Multiset::from_pairs(pairs.iter().copied())
    }

    /// The Petri net of Example 4.2 of the paper (6 places, width 2).
    fn example_4_2_net() -> PetriNet<&'static str> {
        PetriNet::from_transitions([
            Transition::pairwise("i", "i_bar", "p", "q"),
            Transition::pairwise("p_bar", "i", "p", "i"),
            Transition::pairwise("p", "i_bar", "p_bar", "i_bar"),
            Transition::pairwise("q_bar", "i", "q", "i"),
            Transition::pairwise("q", "i_bar", "q_bar", "i_bar"),
            Transition::pairwise("p", "q_bar", "p", "q"),
            Transition::pairwise("q", "p_bar", "q", "p"),
        ])
    }

    #[test]
    fn backward_oracle_simple_net() {
        let net = PetriNet::from_transitions([Transition::pairwise("a", "a", "a", "b")]);
        let oracle = CoverabilityOracle::build(&net, ms(&[("b", 2)]));
        // Minimal configurations covering 2b: {2b}, {b + 2a}, {3a}.
        assert!(oracle.is_coverable_from(&ms(&[("a", 3)])));
        assert!(oracle.is_coverable_from(&ms(&[("a", 2), ("b", 1)])));
        assert!(oracle.is_coverable_from(&ms(&[("b", 2)])));
        assert!(!oracle.is_coverable_from(&ms(&[("a", 2)])));
        assert!(!oracle.is_coverable_from(&ms(&[("a", 1), ("b", 1)])));
        assert_eq!(oracle.basis().len(), 3);
        assert_eq!(oracle.target(), &ms(&[("b", 2)]));
    }

    #[test]
    fn oracle_handles_unreachable_targets() {
        let net = PetriNet::from_transitions([Transition::pairwise("a", "a", "a", "b")]);
        let oracle = CoverabilityOracle::build(&net, ms(&[("z", 1)]));
        // z is never produced: only configurations already containing z qualify.
        assert!(!oracle.is_coverable_from(&ms(&[("a", 100)])));
        assert!(oracle.is_coverable_from(&ms(&[("z", 1)])));
        assert_eq!(oracle.basis().len(), 1);
    }

    #[test]
    fn forward_and_backward_agree_on_example_4_2() {
        let net = example_4_2_net();
        let limits = ExplorationLimits::default();
        for (start, target) in [
            (ms(&[("i", 3), ("i_bar", 2)]), ms(&[("p", 1)])),
            (ms(&[("i", 1), ("i_bar", 2)]), ms(&[("p", 1), ("q", 1)])),
            (ms(&[("i_bar", 4)]), ms(&[("p", 1)])),
            (
                ms(&[("i", 2), ("i_bar", 2)]),
                ms(&[("p_bar", 1), ("q_bar", 1)]),
            ),
        ] {
            let backward = is_coverable(&net, &start, &target);
            let forward = shortest_covering_word(&net, &start, &target, &limits).is_some();
            assert_eq!(
                backward, forward,
                "disagree on {start:?} covering {target:?}"
            );
        }
    }

    #[test]
    fn shortest_word_is_actually_shortest_and_valid() {
        let net = PetriNet::from_transitions([
            Transition::pairwise("a", "a", "a", "b"),
            Transition::pairwise("a", "b", "b", "b"),
        ]);
        let word = shortest_covering_word(
            &net,
            &ms(&[("a", 3)]),
            &ms(&[("b", 3)]),
            &Default::default(),
        )
        .expect("coverable");
        assert_eq!(word.len(), 3);
        let reached = net.fire_word(&ms(&[("a", 3)]), &word).unwrap();
        assert!(ms(&[("b", 3)]).le(&reached));
    }

    #[test]
    fn trivially_covered_target_needs_empty_word() {
        let net = PetriNet::new();
        let word = shortest_covering_word(
            &net,
            &ms(&[("a", 1)]),
            &ms(&[("a", 1)]),
            &Default::default(),
        );
        assert_eq!(word, Some(Vec::new()));
        let none = shortest_covering_word(
            &net,
            &ms(&[("a", 1)]),
            &ms(&[("b", 1)]),
            &Default::default(),
        );
        assert_eq!(none, None);
    }

    #[test]
    fn covering_word_in_prebuilt_graph() {
        let net = example_4_2_net();
        let start = ms(&[("i", 2), ("i_bar", 2)]);
        let graph = ReachabilityGraph::build(&net, [start.clone()], &Default::default());
        let from = graph.initial_ids()[0];
        let word = covering_word_in_graph(&graph, from, &ms(&[("q", 1)])).expect("coverable");
        let reached = net.fire_word(&start, &word).unwrap();
        assert!(ms(&[("q", 1)]).le(&reached));
    }

    #[test]
    fn non_conservative_net_with_creation() {
        // A single agent can spawn unboundedly many b's: b^k coverable for all k.
        let net = PetriNet::from_transitions([Transition::new(
            ms(&[("a", 1)]),
            ms(&[("a", 1), ("b", 1)]),
        )]);
        let oracle = CoverabilityOracle::build(&net, ms(&[("b", 5)]));
        assert!(oracle.is_coverable_from(&ms(&[("a", 1)])));
        assert!(!oracle.is_coverable_from(&ms(&[("b", 4)])));
        let word = shortest_covering_word(
            &net,
            &ms(&[("a", 1)]),
            &ms(&[("b", 5)]),
            &ExplorationLimits::default(),
        )
        .expect("coverable");
        assert_eq!(word.len(), 5);
    }
}
