//! Coverability: forward bounded search and the exact backward algorithm.
//!
//! A configuration `ρ` is *`T`-coverable* from `α` if `α →* β ≥ ρ` for some
//! `β` (Section 5 of the paper). Coverability drives the characterization of
//! stabilized configurations (Lemma 5.4), so the suite provides two decision
//! procedures:
//!
//! * [`CoverabilityOracle`] — the classical backward algorithm over
//!   upward-closed sets. It is exact, requires no budget (termination follows
//!   from Dickson's lemma) and is the workhorse of the
//!   [`stabilized`](crate::stabilized) module.
//! * [`covering_word`] / [`shortest_covering_word`] — a budgeted forward
//!   breadth-first search that returns an explicit *shortest* covering word,
//!   used by experiment E5 to compare actual covering-word lengths against
//!   Rackoff's bound (Lemma 5.3). The [`CoveringWordOutcome`] distinguishes
//!   an exhaustive negative answer from a truncated search, so the BFS
//!   terminates meaningfully on uncoverable targets of unbounded nets.
//!
//! Both [`CoverabilityOracle::build_with`] and the exploration underlying
//! the oracles accept a [`Parallelism`] knob; results are identical across
//! modes.

use crate::arena::ConfigArena;
use crate::engine::CompiledNet;
use crate::packed::{packed_enabled, row_le_words, CellWidth, PackedTransition, RowLayout};
use crate::parallel::Parallelism;
use crate::{ExplorationLimits, PetriNet, ReachabilityGraph};
use pp_multiset::Multiset;
use rayon::prelude::*;
use std::collections::VecDeque;
use std::sync::Arc;

/// Component-wise `a ≤ b` on dense rows of equal width.
fn row_le(a: &[u64], b: &[u64]) -> bool {
    a.iter().zip(b).all(|(x, y)| x <= y)
}

/// The packed backward-cover images of `rows` under every transition, in
/// (row-major, transition-minor) order — the deterministic candidate order
/// of one saturation round of [`CoverabilityOracle::build_with`]. A `None`
/// entry marks a candidate whose count overflowed the current cell width;
/// one is enough to restart the whole saturation a width wider. Takes the
/// packed transitions rather than the whole engine so worker threads need
/// no bounds on the place type.
fn backward_images(transitions: &[PackedTransition], rows: &[Vec<u64>]) -> Vec<Option<Vec<u64>>> {
    let mut out = Vec::with_capacity(rows.len() * transitions.len());
    let mut predecessor = Vec::new();
    for row in rows {
        for t in transitions {
            if t.backward_cover_words(row, &mut predecessor) {
                out.push(Some(predecessor.clone()));
            } else {
                out.push(None);
            }
        }
    }
    out
}

/// Merges one packed backward-cover candidate into the basis under the
/// minimality filter, recording kept candidates in `next` (the following
/// round's frontier). One call per candidate, in the canonical
/// (row-major, transition-minor) order, is what makes the saturation
/// deterministic across build modes. The dominance tests run as SWAR
/// word compares ([`row_le_words`]), the hot loop of the whole backward
/// algorithm.
fn merge_candidate(
    basis: &mut Vec<Vec<u64>>,
    next: &mut Vec<Vec<u64>>,
    candidate: &[u64],
    width: CellWidth,
) {
    if basis.iter().any(|b| row_le_words(b, candidate, width)) {
        return;
    }
    basis.retain(|b| !row_le_words(candidate, b, width));
    basis.push(candidate.to_vec());
    next.push(candidate.to_vec());
}

/// One full backward saturation at a fixed cell `width`, returning the
/// minimal basis as packed rows — or `None` as soon as any candidate
/// overflows a lane, the caller's cue to retry one width wider. The basis
/// is the unique minimal one of the backward-reachable upward-closed set,
/// so a restart at a wider width reproduces exactly the same counts.
fn saturate<P: Clone + Ord>(
    engine: &CompiledNet<P>,
    dense_target: &[u64],
    width: CellWidth,
    workers: usize,
) -> Option<Vec<Vec<u64>>> {
    /// Fan out candidate generation once the round holds this many
    /// (row × transition) pairs; below it, thread spawns would dominate.
    const PARALLEL_CANDIDATE_THRESHOLD: usize = 256;

    let layout = RowLayout::uniform(dense_target.len(), width);
    let transitions = engine.packed_transitions(&layout);
    let packed_target = layout.pack(dense_target);
    // Minimal basis of the upward closure, grown backwards to fixpoint.
    let mut basis: Vec<Vec<u64>> = vec![packed_target.clone()];
    let mut frontier: Vec<Vec<u64>> = vec![packed_target];
    while !frontier.is_empty() {
        let pairs = frontier.len() * transitions.len();
        let mut next: Vec<Vec<u64>> = Vec::new();
        if workers > 1 && pairs >= PARALLEL_CANDIDATE_THRESHOLD {
            let candidates: Vec<Option<Vec<u64>>> = frontier
                .par_chunks(frontier.len().div_ceil(workers))
                .map(|rows| backward_images(&transitions, rows))
                .collect::<Vec<_>>()
                .into_iter()
                .flatten()
                .collect();
            for candidate in &candidates {
                merge_candidate(&mut basis, &mut next, candidate.as_deref()?, width);
            }
        } else {
            // Sequential path: one reused buffer, no per-candidate
            // allocation for the (many) immediately-dominated images.
            let mut predecessor = Vec::new();
            for row in &frontier {
                for t in &transitions {
                    if !t.backward_cover_words(row, &mut predecessor) {
                        return None;
                    }
                    merge_candidate(&mut basis, &mut next, &predecessor, width);
                }
            }
        }
        frontier = next;
    }
    Some(basis)
}

/// Exact coverability decisions via the backward algorithm.
///
/// The oracle is built for a fixed net and target configuration; it computes
/// the finite basis of the upward-closed set `{α : α →* β ≥ target}` once and
/// then answers [`CoverabilityOracle::is_coverable_from`] queries by a simple
/// comparison against the basis.
///
/// # Examples
///
/// ```
/// use pp_multiset::Multiset;
/// use pp_petri::{Analysis, PetriNet, Transition};
///
/// // a + a -> a + b: covering one b needs at least two a (or a b already).
/// let net = PetriNet::from_transitions([Transition::pairwise("a", "a", "a", "b")]);
/// let oracle = Analysis::new(&net).coverability(Multiset::unit("b")).run();
/// assert!(oracle.is_coverable_from(&Multiset::from_pairs([("a", 2u64)])));
/// assert!(!oracle.is_coverable_from(&Multiset::from_pairs([("a", 1u64)])));
/// ```
#[derive(Debug, Clone)]
pub struct CoverabilityOracle<P: Ord> {
    target: Multiset<P>,
    basis: Vec<Multiset<P>>,
    engine: Arc<CompiledNet<P>>,
    dense_basis: Vec<Vec<u64>>,
}

impl<P: Clone + Ord> CoverabilityOracle<P> {
    /// Runs the backward coverability algorithm for `target` over `net` on
    /// the single-threaded engine.
    ///
    /// Equivalent to [`build_with`](Self::build_with) with
    /// [`Parallelism::Sequential`].
    ///
    /// **Deprecated**: use the session API instead —
    /// [`Analysis::new`](crate::session::Analysis::new)`(net).coverability(target).run()`.
    #[deprecated(
        note = "open an `Analysis` session instead: `Analysis::new(net).coverability(target).run()` compiles the net once and caches the oracle per target"
    )]
    #[must_use]
    pub fn build(net: &PetriNet<P>, target: Multiset<P>) -> Self {
        let engine = Arc::new(CompiledNet::compile_with_places(
            net,
            target.support().cloned(),
        ));
        Self::build_on(engine, target, Parallelism::Sequential)
    }

    /// Runs the backward coverability algorithm for `target` over `net`.
    ///
    /// The fixpoint runs on the dense engine: the net is compiled once and
    /// the basis is grown as packed rows with SWAR word arithmetic
    /// (lanes promoted to the next wider cell on overflow), saturating
    /// round by round (every basis row discovered in round `k` has its
    /// backward images considered in round `k + 1`). With
    /// [`Parallelism::Parallel`] the candidate generation of each round —
    /// the embarrassingly-parallel part — fans out over worker threads; the
    /// minimality merge stays sequential and in a fixed order, so the basis
    /// is identical across modes and worker counts (it is the unique
    /// minimal basis of the backward-reachable upward-closed set, stored in
    /// lexicographic row order).
    ///
    /// The returned oracle's [`basis`](Self::basis) is the set of minimal
    /// configurations from which `target` is coverable.
    ///
    /// **Deprecated**: use the session API instead —
    /// [`Analysis::new`](crate::session::Analysis::new)`(net).coverability(target).parallelism(p).run()`.
    #[deprecated(
        note = "open an `Analysis` session instead: `Analysis::new(net).coverability(target).parallelism(p).run()` compiles the net once and caches the oracle per target"
    )]
    #[must_use]
    pub fn build_with(net: &PetriNet<P>, target: Multiset<P>, parallelism: Parallelism) -> Self {
        let engine = Arc::new(CompiledNet::compile_with_places(
            net,
            target.support().cloned(),
        ));
        Self::build_on(engine, target, parallelism)
    }

    /// Runs the backward saturation on an already-compiled engine — the
    /// session entry point ([`Analysis`](crate::session::Analysis) owns the
    /// shared engine). The target must fit the engine's place universe.
    pub(crate) fn build_on(
        engine: Arc<CompiledNet<P>>,
        target: Multiset<P>,
        parallelism: Parallelism,
    ) -> Self {
        let dense_target = engine
            .to_dense(&target)
            .expect("target support is part of the compiled universe");
        let workers = parallelism.workers();
        // Backward candidates are not bounded by any forward reachability
        // bound, so the saturation starts at the narrowest width fitting
        // the target and the transition constants and retries one width
        // wider whenever a candidate overflows a lane. With the packing
        // gate off it runs on u64 cells from the start — the layout
        // bit-identical to the historical dense rows.
        let mut width = if packed_enabled() {
            CellWidth::fitting(
                dense_target
                    .iter()
                    .copied()
                    .max()
                    .unwrap_or(0)
                    .max(engine.max_transition_count()),
            )
        } else {
            CellWidth::U64
        };
        let packed_basis = loop {
            match saturate(&engine, &dense_target, width, workers) {
                Some(basis) => break basis,
                None => {
                    width = width
                        .widen()
                        .expect("a u64 lane cannot overflow in backward cover");
                }
            }
        };
        let layout = RowLayout::uniform(engine.num_places(), width);
        let mut dense_basis: Vec<Vec<u64>> =
            packed_basis.iter().map(|row| layout.unpack(row)).collect();
        // Canonical order: makes the basis comparable across build modes
        // (and across cell widths — packed word order is not count order).
        dense_basis.sort_unstable();
        let basis = dense_basis
            .iter()
            .map(|row| engine.to_sparse(row))
            .collect();
        CoverabilityOracle {
            target,
            basis,
            engine,
            dense_basis,
        }
    }

    /// The target configuration of the oracle.
    #[must_use]
    pub fn target(&self) -> &Multiset<P> {
        &self.target
    }

    /// The minimal configurations from which the target is coverable.
    #[must_use]
    pub fn basis(&self) -> &[Multiset<P>] {
        &self.basis
    }

    /// Returns `true` if the target is coverable from `config`.
    ///
    /// Places of `config` outside the compiled universe are ignored: no
    /// basis element populates them, so they never block a cover.
    #[must_use]
    pub fn is_coverable_from(&self, config: &Multiset<P>) -> bool {
        let row = self.engine.to_dense_lossy(config);
        self.dense_basis.iter().any(|b| row_le(b, &row))
    }
}

/// Forward coverability: returns `true` if `target` is coverable from `from`.
///
/// This is an exact decision (it delegates to the backward algorithm);
/// query [`Analysis::covering_word`](crate::session::Analysis::covering_word)
/// when the witness word itself is needed, or
/// [`Analysis::coverability`](crate::session::Analysis::coverability) to
/// keep (and reuse) the oracle.
#[must_use]
pub fn is_coverable<P: Clone + Ord>(
    net: &PetriNet<P>,
    from: &Multiset<P>,
    target: &Multiset<P>,
) -> bool {
    crate::session::Analysis::new(net)
        .coverability(target.clone())
        .run()
        .is_coverable_from(from)
}

/// The result of a budgeted forward covering-word search.
///
/// The forward BFS of [`covering_word`] must not loop forever on
/// *uncoverable* targets of unbounded nets, so the exploration budget is
/// threaded through it — and the outcome says explicitly whether the
/// negative answer is exact or an artifact of truncation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CoveringWordOutcome {
    /// A shortest covering word (empty when `from` already covers the
    /// target).
    Covered(Vec<usize>),
    /// The search exhausted the full reachable space without covering the
    /// target: the target is definitely not coverable from `from`.
    NotCoverable,
    /// The search hit an exploration limit before settling the question.
    Truncated,
}

impl CoveringWordOutcome {
    /// The covering word, if one was found.
    #[must_use]
    pub fn into_word(self) -> Option<Vec<usize>> {
        match self {
            CoveringWordOutcome::Covered(word) => Some(word),
            _ => None,
        }
    }
}

/// A shortest covering word, found by forward breadth-first search.
///
/// Returns the word `σ` (as transition indices) of minimal length such that
/// `from --σ--> β ≥ target`, or `None` if no such word is found within
/// `limits`. Lemma 5.3 (Rackoff) bounds the length of the returned word by
/// `(‖target‖∞ + ‖T‖∞)^(|P|^|P|)`; experiment E5 compares the two.
///
/// This convenience wrapper conflates "not coverable" with "search
/// truncated"; the session query reports the distinction.
///
/// **Deprecated**: use the session API instead —
/// [`Analysis::new`](crate::session::Analysis::new)`(net).covering_word(from, target).limits(l).run().into_word()`.
#[deprecated(
    note = "open an `Analysis` session instead: `Analysis::new(net).covering_word(from, target).limits(l).run().into_word()` reuses one compile across queries and reports why a search was inconclusive"
)]
#[must_use]
pub fn shortest_covering_word<P: Clone + Ord>(
    net: &PetriNet<P>,
    from: &Multiset<P>,
    target: &Multiset<P>,
    limits: &ExplorationLimits,
) -> Option<Vec<usize>> {
    one_shot_covering_word(net, from, target, limits).into_word()
}

/// A shortest covering word with an explicit outcome, found by forward
/// breadth-first search.
///
/// The search is budgeted by `limits` at every step — configurations are
/// only interned while the budget allows, so the BFS terminates on
/// uncoverable targets of unbounded nets instead of expanding forever —
/// and the outcome distinguishes an exhaustive negative
/// ([`CoveringWordOutcome::NotCoverable`]) from a truncated one
/// ([`CoveringWordOutcome::Truncated`]). An initial configuration that
/// already covers the target yields the empty word.
///
/// Exploration prunes configurations already dominated by a visited one only
/// in the exact sense (identical configurations); for the small nets of the
/// experiments this is sufficient.
///
/// **Deprecated**: use the session API instead —
/// [`Analysis::new`](crate::session::Analysis::new)`(net).covering_word(from, target).limits(l).run()`.
#[deprecated(
    note = "open an `Analysis` session instead: `Analysis::new(net).covering_word(from, target).limits(l).run()` reuses one compile across queries"
)]
#[must_use]
pub fn covering_word<P: Clone + Ord>(
    net: &PetriNet<P>,
    from: &Multiset<P>,
    target: &Multiset<P>,
    limits: &ExplorationLimits,
) -> CoveringWordOutcome {
    one_shot_covering_word(net, from, target, limits)
}

/// The pre-session one-shot search: compiles a dedicated engine, then runs
/// the forward BFS. Backs the deprecated [`covering_word`] /
/// [`shortest_covering_word`] shims.
fn one_shot_covering_word<P: Clone + Ord>(
    net: &PetriNet<P>,
    from: &Multiset<P>,
    target: &Multiset<P>,
    limits: &ExplorationLimits,
) -> CoveringWordOutcome {
    if target.le(from) {
        return CoveringWordOutcome::Covered(Vec::new());
    }
    let engine =
        CompiledNet::compile_with_places(net, from.support().chain(target.support()).cloned());
    forward_covering_word(&engine, from, target, limits)
}

/// The budgeted forward covering-word BFS on an already-compiled engine —
/// the session entry point ([`Analysis::covering_word`] runs here). `from`
/// and `target` must fit the engine's place universe; the trivial-cover
/// fast path (`target ≤ from` ⇒ empty word) is the caller's.
///
/// [`Analysis::covering_word`]: crate::session::Analysis::covering_word
pub(crate) fn forward_covering_word<P: Clone + Ord>(
    engine: &CompiledNet<P>,
    from: &Multiset<P>,
    target: &Multiset<P>,
    limits: &ExplorationLimits,
) -> CoveringWordOutcome {
    if target.le(from) {
        return CoveringWordOutcome::Covered(Vec::new());
    }
    let dense_from = engine
        .to_dense(from)
        .expect("source support is part of the compiled universe");
    let dense_target = engine
        .to_dense(target)
        .expect("target support is part of the compiled universe");

    // The BFS stores the same rows a forward exploration would, so it
    // reuses the exploration width rule — widened to fit the target's
    // cells, so the packed cover compare below is exact.
    let width = engine
        .row_layout(
            dense_from.iter().sum(),
            limits.max_agents,
            limits.effective_max_configurations(),
        )
        .uniform_width()
        .expect("exploration layouts are uniform")
        .max(CellWidth::fitting(
            dense_target.iter().copied().max().unwrap_or(0),
        ));
    let layout = RowLayout::uniform(engine.num_places(), width);
    let transitions = engine.packed_transitions(&layout);
    let packed_target = layout.pack(&dense_target);
    let packed_from = layout.pack(&dense_from);

    let mut arena = ConfigArena::with_layout(layout);
    // Per node: (parent id, transition fired from the parent).
    let mut parents: Vec<(usize, usize)> = Vec::new();
    let reconstruct = |parents: &[(usize, usize)], mut id: usize| {
        let mut word = Vec::new();
        while id != 0 {
            let (parent, transition) = parents[id];
            word.push(transition);
            id = parent;
        }
        word.reverse();
        word
    };

    let root = arena.intern(&packed_from);
    parents.push((0, usize::MAX));
    let mut truncated = false;
    let mut queue: VecDeque<(usize, usize)> = VecDeque::from([(root.index(), 0)]);
    let mut src = Vec::new();
    let mut succ = Vec::new();
    while let Some((id, depth)) = queue.pop_front() {
        if let Some(max_depth) = limits.max_depth {
            if depth >= max_depth {
                truncated = true;
                continue;
            }
        }
        if let Some(max_agents) = limits.max_agents {
            if arena.total(crate::arena::ConfigId(id as u32)) > max_agents {
                truncated = true;
                continue;
            }
        }
        src.clear();
        src.extend_from_slice(arena.row(crate::arena::ConfigId(id as u32)));
        for (t, transition) in transitions.iter().enumerate() {
            if !transition.is_enabled_words(&src) {
                continue;
            }
            transition.fire_words(&src, &mut succ);
            // Cover check first: it needs no interning, so a cover found
            // at the exact budget boundary is still reported. (A covering
            // successor can never be a dedup hit — interned configurations
            // were all checked when first produced.)
            if row_le_words(&packed_target, &succ, width) {
                let mut word = reconstruct(&parents, id);
                word.push(t);
                return CoveringWordOutcome::Covered(word);
            }
            if arena.lookup(&succ).is_some() {
                continue;
            }
            if arena.len() >= limits.effective_max_configurations() {
                // Every already-interned configuration was cover-checked
                // above when first produced, so once the budget blocks new
                // interns no cover can ever be found: stop immediately.
                return CoveringWordOutcome::Truncated;
            }
            let succ_id = arena.intern(&succ).index();
            parents.push((id, t));
            queue.push_back((succ_id, depth + 1));
        }
    }
    if truncated {
        CoveringWordOutcome::Truncated
    } else {
        CoveringWordOutcome::NotCoverable
    }
}

/// Covering words found by searching the pre-built reachability graph.
///
/// Convenience used by analyses that already hold a [`ReachabilityGraph`]:
/// returns a word from the graph node `from` to some node covering `target`.
///
/// **Deprecated**: use the session API instead —
/// [`Analysis::new`](crate::session::Analysis::new)`(net).covering_word(from, target).in_reachability_graph().run()`.
#[deprecated(
    note = "open an `Analysis` session instead: `Analysis::new(net).covering_word(from, target).in_reachability_graph().run()` builds, caches and resumes the graph for you"
)]
#[must_use]
pub fn covering_word_in_graph<P: Clone + Ord>(
    graph: &ReachabilityGraph<P>,
    from: usize,
    target: &Multiset<P>,
) -> Option<Vec<usize>> {
    graph
        .path_to(from, |id| target.le(graph.node(id)))
        .map(|(_, word)| word)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::session::Analysis;
    use crate::Transition;

    fn ms(pairs: &[(&'static str, u64)]) -> Multiset<&'static str> {
        Multiset::from_pairs(pairs.iter().copied())
    }

    /// One-shot oracle through the session API — what the deprecated
    /// `CoverabilityOracle::build` shim forwards external callers to.
    fn oracle(
        net: &PetriNet<&'static str>,
        target: Multiset<&'static str>,
    ) -> CoverabilityOracle<&'static str> {
        Analysis::new(net)
            .coverability(target)
            .run()
            .as_ref()
            .clone()
    }

    /// One-shot budgeted covering-word search through the session API —
    /// what the deprecated `covering_word` shim forwards to.
    fn word_outcome(
        net: &PetriNet<&'static str>,
        from: &Multiset<&'static str>,
        target: &Multiset<&'static str>,
        limits: &ExplorationLimits,
    ) -> CoveringWordOutcome {
        Analysis::new(net)
            .covering_word(from.clone(), target.clone())
            .limits(*limits)
            .run()
    }

    /// The word alone — what the deprecated `shortest_covering_word`
    /// shim forwards to.
    fn shortest_word(
        net: &PetriNet<&'static str>,
        from: &Multiset<&'static str>,
        target: &Multiset<&'static str>,
        limits: &ExplorationLimits,
    ) -> Option<Vec<usize>> {
        word_outcome(net, from, target, limits).into_word()
    }

    /// The Petri net of Example 4.2 of the paper (6 places, width 2).
    fn example_4_2_net() -> PetriNet<&'static str> {
        PetriNet::from_transitions([
            Transition::pairwise("i", "i_bar", "p", "q"),
            Transition::pairwise("p_bar", "i", "p", "i"),
            Transition::pairwise("p", "i_bar", "p_bar", "i_bar"),
            Transition::pairwise("q_bar", "i", "q", "i"),
            Transition::pairwise("q", "i_bar", "q_bar", "i_bar"),
            Transition::pairwise("p", "q_bar", "p", "q"),
            Transition::pairwise("q", "p_bar", "q", "p"),
        ])
    }

    #[test]
    fn backward_oracle_simple_net() {
        let net = PetriNet::from_transitions([Transition::pairwise("a", "a", "a", "b")]);
        let oracle = oracle(&net, ms(&[("b", 2)]));
        // Minimal configurations covering 2b: {2b}, {b + 2a}, {3a}.
        assert!(oracle.is_coverable_from(&ms(&[("a", 3)])));
        assert!(oracle.is_coverable_from(&ms(&[("a", 2), ("b", 1)])));
        assert!(oracle.is_coverable_from(&ms(&[("b", 2)])));
        assert!(!oracle.is_coverable_from(&ms(&[("a", 2)])));
        assert!(!oracle.is_coverable_from(&ms(&[("a", 1), ("b", 1)])));
        assert_eq!(oracle.basis().len(), 3);
        assert_eq!(oracle.target(), &ms(&[("b", 2)]));
    }

    #[test]
    fn oracle_handles_unreachable_targets() {
        let net = PetriNet::from_transitions([Transition::pairwise("a", "a", "a", "b")]);
        let oracle = oracle(&net, ms(&[("z", 1)]));
        // z is never produced: only configurations already containing z qualify.
        assert!(!oracle.is_coverable_from(&ms(&[("a", 100)])));
        assert!(oracle.is_coverable_from(&ms(&[("z", 1)])));
        assert_eq!(oracle.basis().len(), 1);
    }

    #[test]
    fn forward_and_backward_agree_on_example_4_2() {
        let net = example_4_2_net();
        let limits = ExplorationLimits::default();
        for (start, target) in [
            (ms(&[("i", 3), ("i_bar", 2)]), ms(&[("p", 1)])),
            (ms(&[("i", 1), ("i_bar", 2)]), ms(&[("p", 1), ("q", 1)])),
            (ms(&[("i_bar", 4)]), ms(&[("p", 1)])),
            (
                ms(&[("i", 2), ("i_bar", 2)]),
                ms(&[("p_bar", 1), ("q_bar", 1)]),
            ),
        ] {
            let backward = is_coverable(&net, &start, &target);
            let forward = shortest_word(&net, &start, &target, &limits).is_some();
            assert_eq!(
                backward, forward,
                "disagree on {start:?} covering {target:?}"
            );
        }
    }

    #[test]
    fn shortest_word_is_actually_shortest_and_valid() {
        let net = PetriNet::from_transitions([
            Transition::pairwise("a", "a", "a", "b"),
            Transition::pairwise("a", "b", "b", "b"),
        ]);
        let word = shortest_word(
            &net,
            &ms(&[("a", 3)]),
            &ms(&[("b", 3)]),
            &Default::default(),
        )
        .expect("coverable");
        assert_eq!(word.len(), 3);
        let reached = net.fire_word(&ms(&[("a", 3)]), &word).unwrap();
        assert!(ms(&[("b", 3)]).le(&reached));
    }

    #[test]
    fn trivially_covered_target_needs_empty_word() {
        let net = PetriNet::new();
        let word = shortest_word(
            &net,
            &ms(&[("a", 1)]),
            &ms(&[("a", 1)]),
            &Default::default(),
        );
        assert_eq!(word, Some(Vec::new()));
        let none = shortest_word(
            &net,
            &ms(&[("a", 1)]),
            &ms(&[("b", 1)]),
            &Default::default(),
        );
        assert_eq!(none, None);
    }

    #[test]
    fn covered_initial_configuration_yields_empty_word_even_with_transitions() {
        // Regression: the trivial-cover fast path must fire before any
        // exploration, even on nets that could loop, and even when the
        // initial configuration strictly exceeds the target.
        let net = PetriNet::from_transitions([Transition::new(
            ms(&[("a", 1)]),
            ms(&[("a", 1), ("b", 1)]),
        )]);
        let outcome = word_outcome(
            &net,
            &ms(&[("a", 2), ("b", 1)]),
            &ms(&[("a", 1)]),
            &ExplorationLimits::with_max_configurations(1),
        );
        assert_eq!(outcome, CoveringWordOutcome::Covered(Vec::new()));
        assert_eq!(outcome.clone().into_word(), Some(Vec::new()));
    }

    #[test]
    fn cover_found_at_the_budget_boundary_is_still_reported() {
        // One config (the root) exhausts the budget; the very next fired
        // successor covers the target. The cover check needs no interning,
        // so the word must be found, not reported as truncated.
        let net = PetriNet::from_transitions([Transition::new(ms(&[("a", 1)]), ms(&[("b", 1)]))]);
        let outcome = word_outcome(
            &net,
            &ms(&[("a", 1)]),
            &ms(&[("b", 1)]),
            &ExplorationLimits::with_max_configurations(1),
        );
        assert_eq!(outcome, CoveringWordOutcome::Covered(vec![0]));
    }

    #[test]
    fn exhausted_search_reports_not_coverable() {
        // Bounded net, uncoverable target: the BFS drains and the negative
        // answer is exact.
        let net = PetriNet::from_transitions([Transition::pairwise("a", "a", "a", "b")]);
        let outcome = word_outcome(
            &net,
            &ms(&[("a", 2)]),
            &ms(&[("b", 2)]),
            &ExplorationLimits::default(),
        );
        assert_eq!(outcome, CoveringWordOutcome::NotCoverable);
        assert_eq!(outcome.into_word(), None);
    }

    #[test]
    fn uncoverable_target_of_unbounded_net_terminates_as_truncated() {
        // a -> a + b grows without bound and c is never produced: the
        // budgeted BFS must stop at the configuration budget and say that
        // the negative answer is truncated, not exact.
        let net = PetriNet::from_transitions([Transition::new(
            ms(&[("a", 1)]),
            ms(&[("a", 1), ("b", 1)]),
        )]);
        let outcome = word_outcome(
            &net,
            &ms(&[("a", 1)]),
            &ms(&[("c", 1)]),
            &ExplorationLimits::with_max_configurations(50),
        );
        assert_eq!(outcome, CoveringWordOutcome::Truncated);
        // The agent budget is threaded through as well.
        let outcome = word_outcome(
            &net,
            &ms(&[("a", 1)]),
            &ms(&[("c", 1)]),
            &ExplorationLimits::with_max_agents(5),
        );
        assert_eq!(outcome, CoveringWordOutcome::Truncated);
        // And the depth budget.
        let limits = ExplorationLimits {
            max_depth: Some(3),
            ..Default::default()
        };
        let outcome = word_outcome(&net, &ms(&[("a", 1)]), &ms(&[("c", 1)]), &limits);
        assert_eq!(outcome, CoveringWordOutcome::Truncated);
    }

    #[test]
    fn parallel_oracle_builds_the_same_basis() {
        use crate::parallel::Parallelism;
        let net = example_4_2_net();
        for target in [ms(&[("p", 1)]), ms(&[("p", 2), ("q", 1)]), ms(&[("z", 1)])] {
            let sequential = oracle(&net, target.clone());
            let parallel = Analysis::new(&net)
                .coverability(target.clone())
                .parallelism(Parallelism::Parallel(3))
                .run();
            assert_eq!(
                sequential.basis(),
                parallel.basis(),
                "bases differ for target {target:?}"
            );
        }
    }

    #[test]
    fn covering_word_in_prebuilt_graph() {
        let net = example_4_2_net();
        let start = ms(&[("i", 2), ("i_bar", 2)]);
        let word = Analysis::new(&net)
            .covering_word(start.clone(), ms(&[("q", 1)]))
            .in_reachability_graph()
            .run()
            .into_word()
            .expect("coverable");
        let reached = net.fire_word(&start, &word).unwrap();
        assert!(ms(&[("q", 1)]).le(&reached));
    }

    #[test]
    fn non_conservative_net_with_creation() {
        // A single agent can spawn unboundedly many b's: b^k coverable for all k.
        let net = PetriNet::from_transitions([Transition::new(
            ms(&[("a", 1)]),
            ms(&[("a", 1), ("b", 1)]),
        )]);
        let oracle = oracle(&net, ms(&[("b", 5)]));
        assert!(oracle.is_coverable_from(&ms(&[("a", 1)])));
        assert!(!oracle.is_coverable_from(&ms(&[("b", 4)])));
        let word = shortest_word(
            &net,
            &ms(&[("a", 1)]),
            &ms(&[("b", 5)]),
            &ExplorationLimits::default(),
        )
        .expect("coverable");
        assert_eq!(word.len(), 5);
    }

    /// The deprecated one-shot shims stay for external callers only;
    /// this is the one place that still calls them, pinning that they
    /// forward to the session path.
    #[test]
    #[allow(deprecated)]
    fn deprecated_one_shot_shims_forward_to_the_session_path() {
        let net = example_4_2_net();
        let target = ms(&[("p", 1)]);
        let start = ms(&[("i", 2), ("i_bar", 2)]);
        let limits = ExplorationLimits::default();

        // pp-lint: allow(deprecated-internal) — the shim's forwarding is itself under test
        let shim = CoverabilityOracle::build(&net, target.clone());
        assert_eq!(shim.basis(), oracle(&net, target.clone()).basis());
        // pp-lint: allow(deprecated-internal) — the shim's forwarding is itself under test
        let shim = CoverabilityOracle::build_with(&net, target.clone(), Parallelism::Parallel(2));
        assert_eq!(shim.basis(), oracle(&net, target.clone()).basis());

        // pp-lint: allow(deprecated-internal) — the shim's forwarding is itself under test
        let shim = covering_word(&net, &start, &target, &limits);
        assert_eq!(shim, word_outcome(&net, &start, &target, &limits));
        // pp-lint: allow(deprecated-internal) — the shim's forwarding is itself under test
        let shim = shortest_covering_word(&net, &start, &target, &limits);
        assert_eq!(shim, shortest_word(&net, &start, &target, &limits));

        let graph = build_graph(&net, &start);
        let from = graph.initial_ids()[0];
        // pp-lint: allow(deprecated-internal) — the shim's forwarding is itself under test
        let shim = covering_word_in_graph(&graph, from, &target).expect("coverable");
        let reached = net.fire_word(&start, &shim).unwrap();
        assert!(target.le(&reached));
    }

    /// Session-built reachability graph for the in-graph shim test.
    fn build_graph(
        net: &PetriNet<&'static str>,
        start: &Multiset<&'static str>,
    ) -> Arc<ReachabilityGraph<&'static str>> {
        Analysis::new(net).reachability([start.clone()]).run()
    }
}
