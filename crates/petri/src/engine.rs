//! The compiled dense state-space engine.
//!
//! A [`CompiledNet`] freezes a [`PetriNet`] into a dense representation:
//! places become contiguous indices `0..num_places`, configurations become
//! `&[u64]` rows, and every transition is precompiled into sparse
//! pre/post lists over those indices. Successor generation is then a
//! slice copy plus a handful of indexed adds — no tree merges, no
//! allocation beyond the output row — which is what makes the exploration,
//! coverability and simulation layers of the suite run at hardware speed
//! (the `bench_coverability` ablation tracks the speedup over the sparse
//! path).
//!
//! The engine is the *internal* workhorse: the public entry points of
//! [`explore`](crate::explore), [`cover`](crate::cover) and
//! [`karp_miller`](crate::karp_miller) still speak sparse
//! [`Multiset`] configurations and convert at the boundary, so callers
//! choose dense or sparse by picking the API level, not by converting by
//! hand. See `DESIGN.md` for the architecture overview.
//!
//! # Examples
//!
//! ```
//! use pp_multiset::Multiset;
//! use pp_petri::engine::CompiledNet;
//! use pp_petri::{PetriNet, Transition};
//!
//! let net = PetriNet::from_transitions([Transition::pairwise("a", "a", "a", "b")]);
//! let engine = CompiledNet::compile(&net);
//! let row = engine.to_dense(&Multiset::from_pairs([("a", 3u64)])).unwrap();
//! let mut next = Vec::new();
//! assert!(engine.transitions()[0].fire_row(&row, &mut next));
//! assert_eq!(engine.to_sparse(&next), Multiset::from_pairs([("a", 2u64), ("b", 1)]));
//! ```

use crate::PetriNet;
use pp_multiset::Multiset;
use std::collections::BTreeSet;

/// One transition precompiled over dense place indices.
///
/// `pre` and `post` are sparse `(place index, count)` lists, so firing
/// touches only the places the transition actually moves.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompiledTransition {
    pre: Vec<(u32, u64)>,
    post: Vec<(u32, u64)>,
}

impl CompiledTransition {
    /// The dense precondition as `(place index, count)` pairs.
    #[must_use]
    pub fn pre(&self) -> &[(u32, u64)] {
        &self.pre
    }

    /// The dense postcondition as `(place index, count)` pairs.
    #[must_use]
    pub fn post(&self) -> &[(u32, u64)] {
        &self.post
    }

    /// Returns `true` if the transition is enabled in `row`.
    #[must_use]
    pub fn is_enabled_row(&self, row: &[u64]) -> bool {
        self.pre.iter().all(|&(p, c)| row[p as usize] >= c)
    }

    /// Fires the transition from `src` into `dst` (cleared and refilled).
    ///
    /// Returns `false` (leaving `dst` unspecified) if the transition is
    /// disabled in `src`.
    #[must_use]
    pub fn fire_row(&self, src: &[u64], dst: &mut Vec<u64>) -> bool {
        if !self.is_enabled_row(src) {
            return false;
        }
        dst.clear();
        dst.extend_from_slice(src);
        for &(p, c) in &self.pre {
            dst[p as usize] -= c;
        }
        for &(p, c) in &self.post {
            dst[p as usize] += c;
        }
        true
    }

    /// Fires the transition in place.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if the transition is not enabled.
    pub fn fire(&self, config: &mut DenseConfig) {
        for &(p, c) in &self.pre {
            debug_assert!(
                config.counts[p as usize] >= c,
                "transition fired while disabled"
            );
            config.counts[p as usize] -= c;
            config.total -= c;
        }
        for &(p, c) in &self.post {
            config.counts[p as usize] += c;
            config.total += c;
        }
    }

    /// Returns `true` if the transition is enabled in `config`.
    #[must_use]
    pub fn is_enabled(&self, config: &DenseConfig) -> bool {
        self.is_enabled_row(&config.counts)
    }

    /// Number of distinct unordered agent tuples able to play this
    /// transition in `config` (the product of binomial coefficients over
    /// its precondition), used by the instance-weighted scheduler.
    #[must_use]
    pub fn instances(&self, config: &DenseConfig) -> u128 {
        self.pre
            .iter()
            .map(|&(p, c)| binomial(config.counts[p as usize], c))
            .product()
    }

    /// The backward coverability image: writes into `dst` the smallest row
    /// `α` with `α --t--> β ≥ target`, i.e. `(target ∸ β_t) + α_t`.
    pub fn backward_cover_row(&self, target: &[u64], dst: &mut Vec<u64>) {
        dst.clear();
        dst.extend_from_slice(target);
        for &(p, c) in &self.post {
            let slot = &mut dst[p as usize];
            *slot = slot.saturating_sub(c);
        }
        for &(p, c) in &self.pre {
            dst[p as usize] += c;
        }
    }
}

/// A configuration stored as one counter per place, with a cached total.
///
/// This is the mutable working view used by the simulator; exploration
/// works on raw arena rows instead.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct DenseConfig {
    counts: Vec<u64>,
    total: u64,
}

impl DenseConfig {
    /// Builds a dense configuration from raw per-place counts.
    #[must_use]
    pub fn from_row(row: &[u64]) -> Self {
        DenseConfig {
            total: row.iter().sum(),
            counts: row.to_vec(),
        }
    }

    /// Count of agents at dense place index `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of bounds.
    #[must_use]
    pub fn get(&self, index: usize) -> u64 {
        self.counts[index]
    }

    /// Total number of agents.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.total
    }

    /// The per-place counters.
    #[must_use]
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }
}

/// A Petri net compiled to the dense engine representation.
///
/// Holds the dense place universe (sorted, deduplicated) and the
/// precompiled transitions; all conversions between sparse
/// [`Multiset`] configurations and dense rows go through it.
#[derive(Debug, Clone)]
pub struct CompiledNet<P> {
    places: Vec<P>,
    transitions: Vec<CompiledTransition>,
}

impl<P: Clone + Ord> CompiledNet<P> {
    /// Compiles `net` over its own place universe.
    #[must_use]
    pub fn compile(net: &PetriNet<P>) -> Self {
        Self::compile_with_places(net, std::iter::empty())
    }

    /// Compiles `net` over its places plus `extra_places`.
    ///
    /// Analyses whose boundary configurations mention places outside the
    /// net (isolated protocol states, coverability targets over fresh
    /// places) widen the universe with this constructor so those
    /// configurations stay representable.
    #[must_use]
    pub fn compile_with_places<I: IntoIterator<Item = P>>(
        net: &PetriNet<P>,
        extra_places: I,
    ) -> Self {
        let mut universe: BTreeSet<P> = net.places().clone();
        universe.extend(extra_places);
        let places: Vec<P> = universe.into_iter().collect();
        let index_of = |p: &P| {
            u32::try_from(places.binary_search(p).expect("place in universe"))
                .expect("place count fits u32")
        };
        let transitions = net
            .transitions()
            .iter()
            .map(|t| CompiledTransition {
                pre: t.pre().iter().map(|(p, c)| (index_of(p), c)).collect(),
                post: t.post().iter().map(|(p, c)| (index_of(p), c)).collect(),
            })
            .collect();
        CompiledNet {
            places,
            transitions,
        }
    }

    /// The dense place universe, in index order.
    #[must_use]
    pub fn places(&self) -> &[P] {
        &self.places
    }

    /// Number of places (the dense row width).
    #[must_use]
    pub fn num_places(&self) -> usize {
        self.places.len()
    }

    /// Number of transitions.
    #[must_use]
    pub fn num_transitions(&self) -> usize {
        self.transitions.len()
    }

    /// The precompiled transitions, in the net's index order.
    #[must_use]
    pub fn transitions(&self) -> &[CompiledTransition] {
        &self.transitions
    }

    /// The dense index of `place`, if it is part of the universe.
    #[must_use]
    pub fn place_index(&self, place: &P) -> Option<usize> {
        self.places.binary_search(place).ok()
    }

    /// Converts a sparse configuration to a dense row.
    ///
    /// Returns `None` if the configuration populates a place outside the
    /// compiled universe (such a configuration is not representable).
    #[must_use]
    pub fn to_dense(&self, config: &Multiset<P>) -> Option<Vec<u64>> {
        let mut row = vec![0u64; self.places.len()];
        for (p, c) in config.iter() {
            row[self.place_index(p)?] += c;
        }
        Some(row)
    }

    /// Converts a sparse configuration to a dense row, dropping counts on
    /// places outside the universe.
    ///
    /// Sound for queries where extra places can only help the caller
    /// (e.g. "is some basis element ≤ config": basis elements are zero
    /// outside the universe).
    #[must_use]
    pub fn to_dense_lossy(&self, config: &Multiset<P>) -> Vec<u64> {
        let mut row = vec![0u64; self.places.len()];
        for (p, c) in config.iter() {
            if let Some(i) = self.place_index(p) {
                row[i] += c;
            }
        }
        row
    }

    /// Converts a dense row back to a sparse configuration.
    ///
    /// # Panics
    ///
    /// Panics if `row` has the wrong width.
    #[must_use]
    pub fn to_sparse(&self, row: &[u64]) -> Multiset<P> {
        assert_eq!(row.len(), self.places.len(), "row width mismatch");
        Multiset::from_pairs(
            row.iter()
                .enumerate()
                .filter(|&(_, &c)| c > 0)
                .map(|(i, &c)| (self.places[i].clone(), c)),
        )
    }

    /// Builds the dense working configuration for the simulator.
    ///
    /// # Panics
    ///
    /// Panics if `config` populates a place outside the compiled universe.
    #[must_use]
    pub fn dense_config(&self, config: &Multiset<P>) -> DenseConfig {
        let row = self
            .to_dense(config)
            .expect("configuration fits the compiled place universe");
        DenseConfig::from_row(&row)
    }

    /// Converts a [`DenseConfig`] back to a sparse configuration.
    #[must_use]
    pub fn to_multiset(&self, config: &DenseConfig) -> Multiset<P> {
        self.to_sparse(config.counts())
    }

    /// Indices of the transitions enabled in `row`.
    #[must_use]
    pub fn enabled_row(&self, row: &[u64]) -> Vec<usize> {
        self.transitions
            .iter()
            .enumerate()
            .filter(|(_, t)| t.is_enabled_row(row))
            .map(|(i, _)| i)
            .collect()
    }

    /// Indices of the transitions enabled in `config`.
    #[must_use]
    pub fn enabled(&self, config: &DenseConfig) -> Vec<usize> {
        self.enabled_row(config.counts())
    }
}

/// Binomial coefficient `C(n, k)` saturating in `u128`.
#[must_use]
pub fn binomial(n: u64, k: u64) -> u128 {
    if k > n {
        return 0;
    }
    let k = k.min(n - k);
    let mut result: u128 = 1;
    for i in 0..k {
        result = result.saturating_mul(u128::from(n - i)) / u128::from(i + 1);
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Transition;

    fn ms(pairs: &[(&'static str, u64)]) -> Multiset<&'static str> {
        Multiset::from_pairs(pairs.iter().copied())
    }

    fn sample_net() -> PetriNet<&'static str> {
        PetriNet::from_transitions([
            Transition::pairwise("a", "a", "a", "b"),
            Transition::pairwise("a", "b", "b", "b"),
            Transition::new(ms(&[("b", 1)]), ms(&[("c", 2)])),
        ])
    }

    #[test]
    fn compilation_matches_net_shape() {
        let net = sample_net();
        let engine = CompiledNet::compile(&net);
        assert_eq!(engine.num_places(), 3);
        assert_eq!(engine.num_transitions(), 3);
        assert_eq!(engine.places(), &["a", "b", "c"]);
        assert_eq!(engine.place_index(&"b"), Some(1));
        assert_eq!(engine.place_index(&"z"), None);
    }

    #[test]
    fn dense_round_trip() {
        let net = sample_net();
        let engine = CompiledNet::compile(&net);
        let config = ms(&[("a", 2), ("c", 5)]);
        let row = engine.to_dense(&config).unwrap();
        assert_eq!(row, vec![2, 0, 5]);
        assert_eq!(engine.to_sparse(&row), config);
        assert_eq!(engine.to_dense(&ms(&[("z", 1)])), None);
        assert_eq!(
            engine.to_dense_lossy(&ms(&[("a", 1), ("z", 9)])),
            vec![1, 0, 0]
        );
    }

    #[test]
    fn extra_places_widen_the_universe() {
        let net = sample_net();
        let engine = CompiledNet::compile_with_places(&net, ["z"]);
        assert_eq!(engine.num_places(), 4);
        let row = engine.to_dense(&ms(&[("z", 2)])).unwrap();
        assert_eq!(engine.to_sparse(&row), ms(&[("z", 2)]));
    }

    #[test]
    fn dense_firing_matches_sparse_firing() {
        let net = sample_net();
        let engine = CompiledNet::compile(&net);
        let config = ms(&[("a", 2), ("b", 1)]);
        let row = engine.to_dense(&config).unwrap();
        let mut out = Vec::new();
        for (index, t) in net.transitions().iter().enumerate() {
            let sparse_next = t.fire(&config);
            let fired = engine.transitions()[index].fire_row(&row, &mut out);
            assert_eq!(
                fired,
                sparse_next.is_some(),
                "enabledness differs at {index}"
            );
            if let Some(next) = sparse_next {
                assert_eq!(engine.to_sparse(&out), next, "successor differs at {index}");
            }
        }
        assert_eq!(engine.enabled_row(&row), net.enabled_transitions(&config));
    }

    #[test]
    fn in_place_firing_tracks_totals() {
        let net = sample_net();
        let engine = CompiledNet::compile(&net);
        let mut config = engine.dense_config(&ms(&[("a", 3)]));
        assert_eq!(config.total(), 3);
        engine.transitions()[0].fire(&mut config);
        assert_eq!(engine.to_multiset(&config), ms(&[("a", 2), ("b", 1)]));
        assert_eq!(config.total(), 3);
        engine.transitions()[2].fire(&mut config);
        assert_eq!(config.total(), 4); // b -> 2c creates an agent
        assert_eq!(config.get(2), 2);
    }

    #[test]
    fn backward_cover_matches_sparse() {
        let net = sample_net();
        let engine = CompiledNet::compile(&net);
        let target = ms(&[("b", 3), ("c", 1)]);
        let dense_target = engine.to_dense(&target).unwrap();
        let mut out = Vec::new();
        for (index, t) in net.transitions().iter().enumerate() {
            engine.transitions()[index].backward_cover_row(&dense_target, &mut out);
            assert_eq!(
                engine.to_sparse(&out),
                t.fire_backward_cover(&target),
                "backward image differs at {index}"
            );
        }
    }

    #[test]
    fn compiled_pre_post_match_the_net() {
        let net = sample_net();
        let engine = CompiledNet::compile(&net);
        // t0: a+a -> a+b over indices a=0, b=1.
        assert_eq!(engine.transitions()[0].pre(), &[(0, 2)]);
        assert_eq!(engine.transitions()[0].post(), &[(0, 1), (1, 1)]);
        // t2: b -> 2c creates an agent.
        assert_eq!(engine.transitions()[2].pre(), &[(1, 1)]);
        assert_eq!(engine.transitions()[2].post(), &[(2, 2)]);
    }

    #[test]
    fn instance_counts() {
        let net = PetriNet::from_transitions([Transition::pairwise("a", "b", "b", "b")]);
        let engine = CompiledNet::compile(&net);
        let config = engine.dense_config(&ms(&[("a", 3), ("b", 2)]));
        assert_eq!(engine.transitions()[0].instances(&config), 6);
    }

    #[test]
    fn binomial_values() {
        assert_eq!(binomial(5, 2), 10);
        assert_eq!(binomial(5, 0), 1);
        assert_eq!(binomial(3, 5), 0);
        assert_eq!(binomial(10, 10), 1);
    }
}
