//! The compiled dense state-space engine.
//!
//! A [`CompiledNet`] freezes a [`PetriNet`] into a dense representation:
//! places become contiguous indices `0..num_places`, configurations become
//! `&[u64]` rows, and every transition is precompiled into sparse
//! pre/post lists over those indices. Successor generation is then a
//! slice copy plus a handful of indexed adds — no tree merges, no
//! allocation beyond the output row — which is what makes the exploration,
//! coverability and simulation layers of the suite run at hardware speed
//! (the `bench_coverability` ablation tracks the speedup over the sparse
//! path).
//!
//! The engine is the *internal* workhorse: the public entry points of
//! [`explore`](crate::explore), [`cover`](crate::cover) and
//! [`karp_miller`](crate::karp_miller) still speak sparse
//! [`Multiset`] configurations and convert at the boundary, so callers
//! choose dense or sparse by picking the API level, not by converting by
//! hand. See `DESIGN.md` for the architecture overview.
//!
//! # Examples
//!
//! ```
//! use pp_multiset::Multiset;
//! use pp_petri::engine::CompiledNet;
//! use pp_petri::{PetriNet, Transition};
//!
//! let net = PetriNet::from_transitions([Transition::pairwise("a", "a", "a", "b")]);
//! let engine = CompiledNet::compile(&net);
//! let row = engine.to_dense(&Multiset::from_pairs([("a", 3u64)])).unwrap();
//! let mut next = Vec::new();
//! assert!(engine.transitions()[0].fire_row(&row, &mut next));
//! assert_eq!(engine.to_sparse(&next), Multiset::from_pairs([("a", 2u64), ("b", 1)]));
//! ```

use crate::packed::{packed_enabled, CellWidth, PackedTransition, RowLayout};
use crate::PetriNet;
use pp_multiset::Multiset;
use std::collections::BTreeSet;

/// The single scalar iteration point over a sparse `(place, count)` list.
///
/// Every enabled/fire/instances loop of the scalar engine goes through
/// this adapter, so the packed word-level fast path
/// ([`PackedTransition`]) has exactly one scalar counterpart it must
/// agree with — the equivalence proptests compare against these loops.
#[inline(always)]
fn entries(entries: &[(u32, u64)]) -> impl Iterator<Item = (usize, u64)> + '_ {
    entries
        .iter()
        .map(|&(place, count)| (place as usize, count))
}

/// One transition precompiled over dense place indices.
///
/// `pre` and `post` are sparse `(place index, count)` lists, so firing
/// touches only the places the transition actually moves.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompiledTransition {
    pre: Vec<(u32, u64)>,
    post: Vec<(u32, u64)>,
}

impl CompiledTransition {
    /// The dense precondition as `(place index, count)` pairs.
    #[must_use]
    pub fn pre(&self) -> &[(u32, u64)] {
        &self.pre
    }

    /// The dense postcondition as `(place index, count)` pairs.
    #[must_use]
    pub fn post(&self) -> &[(u32, u64)] {
        &self.post
    }

    /// Returns `true` if the transition is enabled in `row`.
    #[must_use]
    pub fn is_enabled_row(&self, row: &[u64]) -> bool {
        entries(&self.pre).all(|(p, c)| row[p] >= c)
    }

    /// Fires the transition from `src` into `dst` (cleared and refilled).
    ///
    /// Returns `false` (leaving `dst` unspecified) if the transition is
    /// disabled in `src`.
    #[must_use]
    pub fn fire_row(&self, src: &[u64], dst: &mut Vec<u64>) -> bool {
        if !self.is_enabled_row(src) {
            return false;
        }
        dst.clear();
        dst.extend_from_slice(src);
        entries(&self.pre).for_each(|(p, c)| dst[p] -= c);
        entries(&self.post).for_each(|(p, c)| dst[p] += c);
        true
    }

    /// Fires the transition in place.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if the transition is not enabled.
    pub fn fire(&self, config: &mut DenseConfig) {
        entries(&self.pre).for_each(|(p, c)| {
            debug_assert!(config.counts[p] >= c, "transition fired while disabled");
            config.counts[p] -= c;
            config.total -= c;
        });
        entries(&self.post).for_each(|(p, c)| {
            config.counts[p] += c;
            config.total += c;
        });
    }

    /// Returns `true` if the transition is enabled in `config`.
    #[must_use]
    pub fn is_enabled(&self, config: &DenseConfig) -> bool {
        self.is_enabled_row(&config.counts)
    }

    /// Number of distinct unordered agent tuples able to play this
    /// transition in `config` (the product of binomial coefficients over
    /// its precondition), used by the instance-weighted scheduler.
    #[must_use]
    pub fn instances(&self, config: &DenseConfig) -> u128 {
        entries(&self.pre)
            .map(|(p, c)| binomial(config.counts[p], c))
            .product()
    }

    /// The backward coverability image: writes into `dst` the smallest row
    /// `α` with `α --t--> β ≥ target`, i.e. `(target ∸ β_t) + α_t`.
    pub fn backward_cover_row(&self, target: &[u64], dst: &mut Vec<u64>) {
        dst.clear();
        dst.extend_from_slice(target);
        entries(&self.post).for_each(|(p, c)| dst[p] = dst[p].saturating_sub(c));
        entries(&self.pre).for_each(|(p, c)| dst[p] += c);
    }
}

/// A configuration stored as one counter per place, with a cached total.
///
/// This is the mutable working view used by the simulator; exploration
/// works on raw arena rows instead.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct DenseConfig {
    counts: Vec<u64>,
    total: u64,
}

impl DenseConfig {
    /// Builds a dense configuration from raw per-place counts.
    #[must_use]
    pub fn from_row(row: &[u64]) -> Self {
        DenseConfig {
            total: row.iter().sum(),
            counts: row.to_vec(),
        }
    }

    /// Count of agents at dense place index `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of bounds.
    #[must_use]
    pub fn get(&self, index: usize) -> u64 {
        self.counts[index]
    }

    /// Total number of agents.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.total
    }

    /// The per-place counters.
    #[must_use]
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }
}

/// A Petri net compiled to the dense engine representation.
///
/// Holds the dense place universe (sorted, deduplicated) and the
/// precompiled transitions; all conversions between sparse
/// [`Multiset`] configurations and dense rows go through it.
#[derive(Debug, Clone)]
pub struct CompiledNet<P> {
    places: Vec<P>,
    transitions: Vec<CompiledTransition>,
    /// Largest per-step agent creation over all transitions
    /// (`max_t (|post_t| − |pre_t|)`, clamped at 0): the headroom the
    /// packed-row width selection adds on top of the agent cap. Zero
    /// means the net is non-increasing and totals are bounded by the
    /// initial configurations alone.
    max_step_creation: u64,
    /// Largest single pre/post count of any transition: packed layouts
    /// must represent the transition constants themselves.
    max_transition_count: u64,
}

impl<P: Clone + Ord> CompiledNet<P> {
    /// Compiles `net` over its own place universe.
    #[must_use]
    pub fn compile(net: &PetriNet<P>) -> Self {
        Self::compile_with_places(net, std::iter::empty())
    }

    /// Compiles `net` over its places plus `extra_places`.
    ///
    /// Analyses whose boundary configurations mention places outside the
    /// net (isolated protocol states, coverability targets over fresh
    /// places) widen the universe with this constructor so those
    /// configurations stay representable.
    #[must_use]
    pub fn compile_with_places<I: IntoIterator<Item = P>>(
        net: &PetriNet<P>,
        extra_places: I,
    ) -> Self {
        let mut universe: BTreeSet<P> = net.places().clone();
        universe.extend(extra_places);
        let places: Vec<P> = universe.into_iter().collect();
        let index_of = |p: &P| {
            u32::try_from(places.binary_search(p).expect("place in universe"))
                .expect("place count fits u32")
        };
        let transitions: Vec<CompiledTransition> = net
            .transitions()
            .iter()
            .map(|t| CompiledTransition {
                pre: t.pre().iter().map(|(p, c)| (index_of(p), c)).collect(),
                post: t.post().iter().map(|(p, c)| (index_of(p), c)).collect(),
            })
            .collect();
        let totals = |entries: &[(u32, u64)]| entries.iter().map(|&(_, c)| c).sum::<u64>();
        let max_step_creation = transitions
            .iter()
            .map(|t| totals(&t.post).saturating_sub(totals(&t.pre)))
            .max()
            .unwrap_or(0);
        let max_transition_count = transitions
            .iter()
            .flat_map(|t| t.pre.iter().chain(&t.post))
            .map(|&(_, c)| c)
            .max()
            .unwrap_or(0);
        CompiledNet {
            places,
            transitions,
            max_step_creation,
            max_transition_count,
        }
    }

    /// Largest per-step agent creation over all transitions
    /// (`max_t (|post_t| − |pre_t|)`, clamped at 0).
    #[must_use]
    pub fn max_step_creation(&self) -> u64 {
        self.max_step_creation
    }

    /// Largest single pre/post count over all transitions — the floor
    /// every packed layout must fit so transition constants themselves
    /// stay representable.
    #[must_use]
    pub fn max_transition_count(&self) -> u64 {
        self.max_transition_count
    }

    /// The packed [`RowLayout`] for explorations starting from
    /// configurations of at most `max_initial_total` agents under an
    /// optional agent cap and a node budget of `max_configurations` —
    /// the width-selection rule of the packed representation.
    ///
    /// The chosen cell width fits a proven bound on every count the
    /// exploration can *materialise* (stored rows and
    /// fired-but-budget-refused scratch rows alike):
    ///
    /// * a non-increasing net (zero [`max_step_creation`]) never exceeds
    ///   the largest initial total;
    /// * under an agent cap `m`, only rows with total ≤ `m` are expanded,
    ///   so no fired row exceeds `m + max_step_creation`;
    /// * otherwise the node budget bounds the BFS depth: every explored
    ///   level interns at least one fresh node (an empty level ends the
    ///   exploration), so every stored node sits at depth <
    ///   `max_configurations` and no materialised row — a row fired from
    ///   the deepest stored node included — can exceed
    ///   `max_initial_total + max_step_creation × max_configurations`.
    ///   Only when that product overflows `u64` does the layout fall
    ///   back to the uncompressed `u64` cells.
    ///
    /// The bound also covers every transition constant, so packed
    /// transition compilation is always representable. When packing is
    /// disabled (`PP_PETRI_PACKED=0`, see [`packed_enabled`]) this always
    /// returns the `u64` layout — the bit-identity fallback path.
    ///
    /// [`max_step_creation`]: Self::max_step_creation
    #[must_use]
    pub fn row_layout(
        &self,
        max_initial_total: u64,
        max_agents: Option<u64>,
        max_configurations: usize,
    ) -> RowLayout {
        let width = if !packed_enabled() {
            CellWidth::U64
        } else {
            let bound = if self.max_step_creation == 0 {
                Some(max_initial_total)
            } else if let Some(cap) = max_agents {
                Some(max_initial_total.max(cap.saturating_add(self.max_step_creation)))
            } else {
                let budget = max_configurations.min(crate::explore::MAX_GRAPH_CONFIGURATIONS);
                self.max_step_creation
                    .checked_mul(budget as u64)
                    .and_then(|grown| grown.checked_add(max_initial_total))
            };
            match bound {
                Some(bound) => CellWidth::fitting(bound.max(self.max_transition_count)),
                None => CellWidth::U64,
            }
        };
        RowLayout::uniform(self.places.len(), width)
    }

    /// Compiles every transition against a uniform packed layout, in the
    /// net's transition order.
    #[must_use]
    pub fn packed_transitions(&self, layout: &RowLayout) -> Vec<PackedTransition> {
        self.transitions
            .iter()
            .map(|t| PackedTransition::compile(layout, &t.pre, &t.post))
            .collect()
    }

    /// The dense place universe, in index order.
    #[must_use]
    pub fn places(&self) -> &[P] {
        &self.places
    }

    /// Number of places (the dense row width).
    #[must_use]
    pub fn num_places(&self) -> usize {
        self.places.len()
    }

    /// Number of transitions.
    #[must_use]
    pub fn num_transitions(&self) -> usize {
        self.transitions.len()
    }

    /// The precompiled transitions, in the net's index order.
    #[must_use]
    pub fn transitions(&self) -> &[CompiledTransition] {
        &self.transitions
    }

    /// The dense index of `place`, if it is part of the universe.
    #[must_use]
    pub fn place_index(&self, place: &P) -> Option<usize> {
        self.places.binary_search(place).ok()
    }

    /// Converts a sparse configuration to a dense row.
    ///
    /// Returns `None` if the configuration populates a place outside the
    /// compiled universe (such a configuration is not representable).
    #[must_use]
    pub fn to_dense(&self, config: &Multiset<P>) -> Option<Vec<u64>> {
        let mut row = vec![0u64; self.places.len()];
        for (p, c) in config.iter() {
            row[self.place_index(p)?] += c;
        }
        Some(row)
    }

    /// Converts a sparse configuration to a dense row, dropping counts on
    /// places outside the universe.
    ///
    /// Sound for queries where extra places can only help the caller
    /// (e.g. "is some basis element ≤ config": basis elements are zero
    /// outside the universe).
    #[must_use]
    pub fn to_dense_lossy(&self, config: &Multiset<P>) -> Vec<u64> {
        let mut row = vec![0u64; self.places.len()];
        for (p, c) in config.iter() {
            if let Some(i) = self.place_index(p) {
                row[i] += c;
            }
        }
        row
    }

    /// Converts a dense row back to a sparse configuration.
    ///
    /// # Panics
    ///
    /// Panics if `row` has the wrong width.
    #[must_use]
    pub fn to_sparse(&self, row: &[u64]) -> Multiset<P> {
        assert_eq!(row.len(), self.places.len(), "row width mismatch");
        Multiset::from_pairs(
            row.iter()
                .enumerate()
                .filter(|&(_, &c)| c > 0)
                .map(|(i, &c)| (self.places[i].clone(), c)),
        )
    }

    /// Builds the dense working configuration for the simulator.
    ///
    /// # Panics
    ///
    /// Panics if `config` populates a place outside the compiled universe.
    #[must_use]
    pub fn dense_config(&self, config: &Multiset<P>) -> DenseConfig {
        let row = self
            .to_dense(config)
            .expect("configuration fits the compiled place universe");
        DenseConfig::from_row(&row)
    }

    /// Converts a [`DenseConfig`] back to a sparse configuration.
    #[must_use]
    pub fn to_multiset(&self, config: &DenseConfig) -> Multiset<P> {
        self.to_sparse(config.counts())
    }

    /// Indices of the transitions enabled in `row`.
    #[must_use]
    pub fn enabled_row(&self, row: &[u64]) -> Vec<usize> {
        self.transitions
            .iter()
            .enumerate()
            .filter(|(_, t)| t.is_enabled_row(row))
            .map(|(i, _)| i)
            .collect()
    }

    /// Indices of the transitions enabled in `config`.
    #[must_use]
    pub fn enabled(&self, config: &DenseConfig) -> Vec<usize> {
        self.enabled_row(config.counts())
    }
}

/// Binomial coefficient `C(n, k)` saturating in `u128`.
#[must_use]
pub fn binomial(n: u64, k: u64) -> u128 {
    if k > n {
        return 0;
    }
    let k = k.min(n - k);
    let mut result: u128 = 1;
    for i in 0..k {
        result = result.saturating_mul(u128::from(n - i)) / u128::from(i + 1);
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Transition;

    fn ms(pairs: &[(&'static str, u64)]) -> Multiset<&'static str> {
        Multiset::from_pairs(pairs.iter().copied())
    }

    fn sample_net() -> PetriNet<&'static str> {
        PetriNet::from_transitions([
            Transition::pairwise("a", "a", "a", "b"),
            Transition::pairwise("a", "b", "b", "b"),
            Transition::new(ms(&[("b", 1)]), ms(&[("c", 2)])),
        ])
    }

    #[test]
    fn compilation_matches_net_shape() {
        let net = sample_net();
        let engine = CompiledNet::compile(&net);
        assert_eq!(engine.num_places(), 3);
        assert_eq!(engine.num_transitions(), 3);
        assert_eq!(engine.places(), &["a", "b", "c"]);
        assert_eq!(engine.place_index(&"b"), Some(1));
        assert_eq!(engine.place_index(&"z"), None);
    }

    #[test]
    fn dense_round_trip() {
        let net = sample_net();
        let engine = CompiledNet::compile(&net);
        let config = ms(&[("a", 2), ("c", 5)]);
        let row = engine.to_dense(&config).unwrap();
        assert_eq!(row, vec![2, 0, 5]);
        assert_eq!(engine.to_sparse(&row), config);
        assert_eq!(engine.to_dense(&ms(&[("z", 1)])), None);
        assert_eq!(
            engine.to_dense_lossy(&ms(&[("a", 1), ("z", 9)])),
            vec![1, 0, 0]
        );
    }

    #[test]
    fn extra_places_widen_the_universe() {
        let net = sample_net();
        let engine = CompiledNet::compile_with_places(&net, ["z"]);
        assert_eq!(engine.num_places(), 4);
        let row = engine.to_dense(&ms(&[("z", 2)])).unwrap();
        assert_eq!(engine.to_sparse(&row), ms(&[("z", 2)]));
    }

    #[test]
    fn dense_firing_matches_sparse_firing() {
        let net = sample_net();
        let engine = CompiledNet::compile(&net);
        let config = ms(&[("a", 2), ("b", 1)]);
        let row = engine.to_dense(&config).unwrap();
        let mut out = Vec::new();
        for (index, t) in net.transitions().iter().enumerate() {
            let sparse_next = t.fire(&config);
            let fired = engine.transitions()[index].fire_row(&row, &mut out);
            assert_eq!(
                fired,
                sparse_next.is_some(),
                "enabledness differs at {index}"
            );
            if let Some(next) = sparse_next {
                assert_eq!(engine.to_sparse(&out), next, "successor differs at {index}");
            }
        }
        assert_eq!(engine.enabled_row(&row), net.enabled_transitions(&config));
    }

    #[test]
    fn in_place_firing_tracks_totals() {
        let net = sample_net();
        let engine = CompiledNet::compile(&net);
        let mut config = engine.dense_config(&ms(&[("a", 3)]));
        assert_eq!(config.total(), 3);
        engine.transitions()[0].fire(&mut config);
        assert_eq!(engine.to_multiset(&config), ms(&[("a", 2), ("b", 1)]));
        assert_eq!(config.total(), 3);
        engine.transitions()[2].fire(&mut config);
        assert_eq!(config.total(), 4); // b -> 2c creates an agent
        assert_eq!(config.get(2), 2);
    }

    #[test]
    fn backward_cover_matches_sparse() {
        let net = sample_net();
        let engine = CompiledNet::compile(&net);
        let target = ms(&[("b", 3), ("c", 1)]);
        let dense_target = engine.to_dense(&target).unwrap();
        let mut out = Vec::new();
        for (index, t) in net.transitions().iter().enumerate() {
            engine.transitions()[index].backward_cover_row(&dense_target, &mut out);
            assert_eq!(
                engine.to_sparse(&out),
                t.fire_backward_cover(&target),
                "backward image differs at {index}"
            );
        }
    }

    #[test]
    fn compiled_pre_post_match_the_net() {
        let net = sample_net();
        let engine = CompiledNet::compile(&net);
        // t0: a+a -> a+b over indices a=0, b=1.
        assert_eq!(engine.transitions()[0].pre(), &[(0, 2)]);
        assert_eq!(engine.transitions()[0].post(), &[(0, 1), (1, 1)]);
        // t2: b -> 2c creates an agent.
        assert_eq!(engine.transitions()[2].pre(), &[(1, 1)]);
        assert_eq!(engine.transitions()[2].post(), &[(2, 2)]);
    }

    #[test]
    fn instance_counts() {
        let net = PetriNet::from_transitions([Transition::pairwise("a", "b", "b", "b")]);
        let engine = CompiledNet::compile(&net);
        let config = engine.dense_config(&ms(&[("a", 3), ("b", 2)]));
        assert_eq!(engine.transitions()[0].instances(&config), 6);
    }

    #[test]
    fn width_selection_rule() {
        let _gate = crate::packed::GATE_TEST_LOCK.lock().unwrap();
        let was = packed_enabled();
        crate::packed::set_packed_enabled(true);
        // Non-increasing pairwise net: the bound is the initial total.
        let net = PetriNet::from_transitions([Transition::pairwise("a", "b", "b", "b")]);
        let engine = CompiledNet::compile(&net);
        assert_eq!(engine.max_step_creation(), 0);
        let budget = 250_000usize;
        let w = |total, cap| {
            engine
                .row_layout(total, cap, budget)
                .uniform_width()
                .unwrap()
        };
        assert_eq!(w(10, None), CellWidth::U8);
        assert_eq!(w(255, None), CellWidth::U8);
        assert_eq!(w(256, None), CellWidth::U16);
        assert_eq!(w(1 << 40, None), CellWidth::U64);
        // An agent-creating net (b -> 2c): bounded by the node budget
        // without a cap, and capped runs get creation headroom for
        // fired-but-refused rows.
        let engine = CompiledNet::compile(&sample_net());
        assert_eq!(engine.max_step_creation(), 1);
        let w = |total, cap| {
            engine
                .row_layout(total, cap, budget)
                .uniform_width()
                .unwrap()
        };
        assert_eq!(w(10, None), CellWidth::U32, "10 + 1 x 250000 needs u32");
        assert_eq!(w(10, Some(254)), CellWidth::U8);
        assert_eq!(w(10, Some(255)), CellWidth::U16, "cap + creation = 256");
        let tiny = |total, budget| {
            engine
                .row_layout(total, None, budget)
                .uniform_width()
                .unwrap()
        };
        assert_eq!(tiny(10, 200), CellWidth::U8, "10 + 1 x 200 fits a byte");
        assert_eq!(tiny(10, 246), CellWidth::U16, "10 + 1 x 246 overflows it");
        assert_eq!(
            tiny(10, usize::MAX),
            CellWidth::U64,
            "the id-space clamp keeps the budget bound finite but wide"
        );
        // Disabling the gate forces the uncompressed fallback layout.
        crate::packed::set_packed_enabled(false);
        assert_eq!(w(10, Some(254)), CellWidth::U64);
        crate::packed::set_packed_enabled(was);
    }

    #[test]
    fn layout_covers_transition_constants() {
        // A net whose transition constant (300) exceeds the initial
        // total: the layout must still represent the constant so packed
        // transition compilation cannot overflow a cell.
        let net =
            PetriNet::from_transitions([Transition::new(ms(&[("a", 300)]), ms(&[("b", 300)]))]);
        let engine = CompiledNet::compile(&net);
        let _gate = crate::packed::GATE_TEST_LOCK.lock().unwrap();
        let was = packed_enabled();
        crate::packed::set_packed_enabled(true);
        let layout = engine.row_layout(2, None, 1_000);
        assert_eq!(layout.uniform_width(), Some(CellWidth::U16));
        let packed = engine.packed_transitions(&layout);
        assert_eq!(packed.len(), 1);
        crate::packed::set_packed_enabled(was);
    }

    #[test]
    fn binomial_values() {
        assert_eq!(binomial(5, 2), 10);
        assert_eq!(binomial(5, 0), 1);
        assert_eq!(binomial(3, 5), 0);
        assert_eq!(binomial(10, 10), 1);
    }
}
