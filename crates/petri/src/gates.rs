//! The audited registry of `PP_*` environment gates.
//!
//! Every behavioural knob the suite reads from the environment is
//! declared here, and every read goes through [`read`] — this module is
//! the *only* place in the workspace allowed to call [`std::env::var`]
//! (enforced by `pp_lint`'s `gate-registry` rule). Routing the reads
//! through one module buys three things:
//!
//! * **Discoverability** — [`GATES`] is the complete list of knobs; the
//!   README's gate table is cross-checked against it by the lint, so the
//!   docs cannot silently rot.
//! * **Auditability** — a gate that influences exploration results would
//!   be a determinism bug (the engine promises bit-identical graphs for
//!   every worker count and packing mode); keeping the reads in one
//!   ~100-line module makes the "performance-only" claim reviewable.
//! * **Uniform parsing discipline** — value grammars stay next to the
//!   gate they belong to ([`Parallelism::from_env_value`] and
//!   `packed::from_env_value`), not scattered over call sites.
//!
//! [`Parallelism::from_env_value`]: crate::parallel::Parallelism::from_env_value

/// Name of the worker-count gate: `0` forces the sequential engine, a
/// positive integer `n` forces `Parallel(n)`, anything unparsable falls
/// back to hardware detection. Read by
/// [`Parallelism::auto`](crate::parallel::Parallelism::auto).
pub const PP_PETRI_THREADS: &str = "PP_PETRI_THREADS";

/// Name of the packed-row-storage gate: `0`/`off`/`false` (trimmed,
/// case-insensitive) forces the uncompressed `u64` row layout, anything
/// else leaves packing on (the default). Read by
/// [`packed::packed_enabled`](crate::packed::packed_enabled).
pub const PP_PETRI_PACKED: &str = "PP_PETRI_PACKED";

/// Name of the analysis-server address gate: the default `host:port` the
/// `pp_serve` CLI binds (`serve`) or connects to (`submit`/`ping`) when no
/// `--addr` flag is given. Defaults to `127.0.0.1:7929` when unset.
pub const PP_SERVE_ADDR: &str = "PP_SERVE_ADDR";

/// Name of the analysis-server connection-cap gate: a positive integer
/// caps how many client connections `pp_serve` handles concurrently
/// (excess connections are refused with a `server-busy` frame); unset or
/// unparsable values fall back to the default cap of 64.
pub const PP_SERVE_THREADS: &str = "PP_SERVE_THREADS";

/// One registered environment gate: its name plus the one-line contract
/// the README gate table repeats.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Gate {
    /// The environment variable name (always `PP_*`).
    pub name: &'static str,
    /// Accepted values, in the shorthand the README table uses.
    pub values: &'static str,
    /// What the gate does. Gates are performance/representation levers
    /// only: none may change the *result* of any query.
    pub effect: &'static str,
}

/// Every environment gate the suite reads, in registration order.
///
/// Adding a gate means adding a row here, a `pub const` name above, and
/// a row in the README's "Environment gates" table — `pp_lint` fails CI
/// if the three drift apart.
pub const GATES: &[Gate] = &[
    Gate {
        name: PP_PETRI_THREADS,
        values: "`0` | `n ≥ 1` | unset/garbage",
        effect: "worker count for every state-space fixpoint: `0` forces the \
                 sequential engine, `n` forces `Parallel(n)`, anything else \
                 auto-detects. Results are bit-identical across all values.",
    },
    Gate {
        name: PP_PETRI_PACKED,
        values: "`0`/`off`/`false` | anything else",
        effect: "row representation: off forces the uncompressed `u64` layout, \
                 on (default) packs counts at the width bound. Results are \
                 bit-identical either way.",
    },
    Gate {
        name: PP_SERVE_ADDR,
        values: "`host:port` | unset",
        effect: "default address of the `pp_serve` CLI when `--addr` is absent: \
                 `serve` binds it, `submit`/`ping` connect to it. Falls back to \
                 `127.0.0.1:7929`. A deployment knob only: it cannot change the \
                 result of any analysis.",
    },
    Gate {
        name: PP_SERVE_THREADS,
        values: "`n ≥ 1` | unset/garbage",
        effect: "cap on concurrent `pp_serve` client connections (one reader + \
                 one executor thread each); connections beyond the cap are \
                 refused with a `server-busy` frame. Default 64. Responses are \
                 bit-identical at every cap.",
    },
];

/// Reads a registered gate from the environment.
///
/// Returns `None` when the variable is unset or not valid Unicode (an
/// unreadable gate behaves like an absent one — every gate has a
/// default). Panics in debug builds when `name` is not in [`GATES`]:
/// reading an unregistered gate is a programming error, the registry
/// exists precisely so no knob can bypass it.
#[must_use]
pub fn read(name: &str) -> Option<String> {
    debug_assert!(
        GATES.iter().any(|gate| gate.name == name),
        "environment gate {name:?} is not registered in pp_petri::gates::GATES"
    );
    std::env::var(name).ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_names_are_prefixed_and_unique() {
        for (i, gate) in GATES.iter().enumerate() {
            assert!(gate.name.starts_with("PP_"), "{}", gate.name);
            assert!(!gate.values.is_empty() && !gate.effect.is_empty());
            assert!(
                GATES[..i].iter().all(|earlier| earlier.name != gate.name),
                "duplicate gate {}",
                gate.name
            );
        }
    }

    #[test]
    fn read_returns_none_for_unset_registered_gate() {
        // The test environment may set the gates; only assert the
        // read path is exercised without panicking.
        let _ = read(PP_PETRI_THREADS);
        let _ = read(PP_PETRI_PACKED);
        let _ = read(PP_SERVE_ADDR);
        let _ = read(PP_SERVE_THREADS);
    }

    #[test]
    #[should_panic(expected = "not registered")]
    #[cfg(debug_assertions)]
    fn read_rejects_unregistered_gates() {
        let _ = read("PP_NOT_A_GATE");
    }
}
