//! Bounded forward exploration of Petri-net reachability graphs.
//!
//! Most analyses of the suite (output-stability, components, bottom
//! configurations, stable-computation verification) work on the *reachability
//! graph* of a Petri net from an initial configuration. For conservative nets
//! — the common case for population protocols — this graph is finite; for
//! general nets (the paper's model allows agent creation and destruction) the
//! exploration is truncated by [`ExplorationLimits`] and the result records
//! whether it is complete.

use crate::arena::{ConfigArena, ConfigId, ShardedArena, ShardedConfigId};
use crate::engine::CompiledNet;
use crate::packed::{PackedTransition, RowLayout};
use crate::parallel::Parallelism;
use crate::session::Completion;
use crate::PetriNet;
use pp_multiset::Multiset;
use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Barrier, Mutex, OnceLock, RwLock};

/// The largest number of configurations any exploration can store: the
/// `u32` id space of [`ConfigArena`].
///
/// [`ExplorationLimits::max_configurations`] values above this ceiling are
/// clamped, so an over-sized budget degrades into a truncated build
/// (`is_complete() == false`) instead of an id-overflow panic deep inside
/// the arena.
pub const MAX_GRAPH_CONFIGURATIONS: usize = u32::MAX as usize;

/// Test-only fault injection for the parallel engine.
///
/// Hidden from the documented API: the `tests/parallel_poison.rs`
/// integration test sets [`PANIC_IN_WORKERS`](fault_injection::PANIC_IN_WORKERS)
/// to prove that a panicking worker thread poisons the whole build — the
/// panic propagates out of [`ReachabilityGraph::build_with`] — instead of
/// deadlocking the pipeline barrier. While set, worker dispatch also
/// ignores the minimum level size so tiny test graphs still spawn workers.
#[doc(hidden)]
pub mod fault_injection {
    use std::sync::atomic::AtomicBool;

    /// When `true`, every spawned exploration worker panics at its next
    /// wakeup (the main thread never does — it must survive to observe
    /// the poisoning).
    pub static PANIC_IN_WORKERS: AtomicBool = AtomicBool::new(false);

    /// When `true`, the sharded scratch arenas refuse every *fresh*
    /// intern, as if their shard-local `u32` id space were exhausted
    /// (dedup hits still resolve). Worker dispatch also ignores the
    /// minimum level size, like [`PANIC_IN_WORKERS`]. Regression lever
    /// for the id-space truncation path: builds must degrade to
    /// `Completion::IdSpace`, never panic.
    pub static EXHAUST_SCRATCH_IDS: AtomicBool = AtomicBool::new(false);
}

/// Limits for forward exploration.
///
/// An exploration is *complete* when it terminated without hitting any limit;
/// analyses that need exactness check [`ReachabilityGraph::is_complete`]
/// before trusting the graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExplorationLimits {
    /// Maximum number of distinct configurations to store.
    pub max_configurations: usize,
    /// Configurations with more agents than this are not expanded.
    pub max_agents: Option<u64>,
    /// Maximum BFS depth (number of transition firings), if any.
    pub max_depth: Option<usize>,
}

impl Default for ExplorationLimits {
    fn default() -> Self {
        ExplorationLimits {
            max_configurations: 250_000,
            max_agents: None,
            max_depth: None,
        }
    }
}

impl ExplorationLimits {
    /// The configuration budget actually enforced: `max_configurations`
    /// clamped to the arena's `u32` id space
    /// ([`MAX_GRAPH_CONFIGURATIONS`]).
    pub(crate) fn effective_max_configurations(&self) -> usize {
        self.max_configurations.min(MAX_GRAPH_CONFIGURATIONS)
    }

    /// Returns `true` if every limit of `self` is at least as permissive as
    /// the corresponding limit of `other` (`None` caps count as infinite).
    ///
    /// This is the precondition of [`ReachabilityGraph::resume`]: a graph
    /// built under `other` can be extended in place to `self` exactly when
    /// `self.dominates(&other)`.
    #[must_use]
    pub fn dominates(&self, other: &ExplorationLimits) -> bool {
        fn cap_ge<T: Ord>(mine: Option<T>, theirs: Option<T>) -> bool {
            match (mine, theirs) {
                (None, _) => true,
                (Some(_), None) => false,
                (Some(a), Some(b)) => a >= b,
            }
        }
        self.max_configurations >= other.max_configurations
            && cap_ge(self.max_agents, other.max_agents)
            && cap_ge(self.max_depth, other.max_depth)
    }

    /// Limits with the given configuration budget and no other restrictions.
    #[must_use]
    pub fn with_max_configurations(max_configurations: usize) -> Self {
        ExplorationLimits {
            max_configurations,
            ..Default::default()
        }
    }

    /// Limits suitable for non-conservative nets: configurations with more
    /// than `max_agents` agents are not expanded.
    #[must_use]
    pub fn with_max_agents(max_agents: u64) -> Self {
        ExplorationLimits {
            max_agents: Some(max_agents),
            ..Default::default()
        }
    }
}

/// The (possibly truncated) reachability graph of a Petri net from a set of
/// initial configurations.
///
/// Nodes are configurations, edges are labelled by transition indices of the
/// underlying net. Graphs are built through an
/// [`Analysis`](crate::session::Analysis) session, which compiles the net
/// once and can **resume** a truncated graph in place when a later query
/// raises the budgets (see [`resume`](Self::resume)).
///
/// # Examples
///
/// ```
/// use pp_multiset::Multiset;
/// use pp_petri::{Analysis, PetriNet, Transition};
///
/// let net = PetriNet::from_transitions([Transition::pairwise("a", "a", "b", "b")]);
/// let start = Multiset::from_pairs([("a", 4u64)]);
/// let graph = Analysis::new(&net).reachability([start]).run();
/// assert!(graph.completion().is_complete());
/// assert_eq!(graph.len(), 3); // 4a, 2a+2b, 4b
/// ```
#[derive(Debug, Clone)]
pub struct ReachabilityGraph<P: Ord> {
    engine: Arc<CompiledNet<P>>,
    arena: ConfigArena,
    /// Sparse views of the arena rows, converted lazily on first access
    /// (many callers only need ids, lengths or dense rows).
    sparse_views: Vec<OnceLock<Multiset<P>>>,
    edges: Vec<Vec<(usize, usize)>>,
    initial: Vec<usize>,
    completion: Completion,
    /// The limits the graph was (last) built under; [`resume`](Self::resume)
    /// extends them in place.
    limits: ExplorationLimits,
    /// BFS discovery depth per node (node ids are assigned in discovery
    /// order, so this is also the order depths were decided in).
    depths: Vec<u32>,
    /// The nodes that are stored but not fully expanded (ascending ids):
    /// over the agent cap, at the depth cap, or with successors the
    /// configuration budget refused to intern. This is exactly the frontier
    /// [`resume`](Self::resume) re-expands.
    dirty: Vec<DirtyNode>,
    /// Dense rows of initial configurations the budget refused to intern,
    /// in supplied order — replayed first on resume.
    pending_initials: Vec<Vec<u64>>,
}

/// Outgoing adjacency lists: per node, `(transition index, successor id)`.
type EdgeLists = Vec<Vec<(usize, usize)>>;

/// One entry of the dirty frontier: a node stored but not fully expanded,
/// plus the arena length at the moment the build moved past it.
///
/// The watermark decides whether an in-place [`ReachabilityGraph::resume`]
/// can stay bit-identical to a cold build: re-expanding the node appends
/// its fresh successors at the end of the id sequence, which matches the
/// cold numbering exactly when nothing was interned after the node was
/// skipped (`watermark == len`). Budget-refused nodes always satisfy this
/// (interning stops globally when the budget fills), and so do depth-capped
/// frontiers (they are the maximal-depth tail); an *agent-capped* node in
/// the middle of the sequence does not — a cold build at a raised cap would
/// insert its successors mid-sequence — so resume falls back to a cold
/// rebuild when such a hole re-expands.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct DirtyNode {
    id: u32,
    watermark: u32,
}

/// Which exploration limits bit during a build. The flags are set at the
/// exact decision points the sequential search would set them, in both
/// engines, so they are deterministic across modes and worker counts.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
struct Truncation {
    config: bool,
    agents: bool,
    depth: bool,
    /// A sharded scratch arena ran out of shard-local `u32` ids mid-build
    /// (the parallel engine's analogue of the sequential id-space clamp).
    id_space: bool,
}

impl Truncation {
    /// The dominant [`Completion`] for these flags under `limits`
    /// (id space → configuration budget → agent cap → depth cap; a budget
    /// that was clamped by the arena id space also reports
    /// [`Completion::IdSpace`]).
    fn completion(self, limits: &ExplorationLimits) -> Completion {
        if self.id_space {
            Completion::IdSpace
        } else if self.config {
            if limits.max_configurations > MAX_GRAPH_CONFIGURATIONS {
                Completion::IdSpace
            } else {
                Completion::ConfigBudget
            }
        } else if self.agents {
            Completion::AgentCap
        } else if self.depth {
            Completion::DepthCap
        } else {
            Completion::Complete
        }
    }
}

/// The seed state both build paths start from: the arena and edge lists
/// holding the interned initial configurations, their ids and depths, the
/// initial rows the budget refused, and the flags recorded so far.
struct SeedState {
    arena: ConfigArena,
    edges: EdgeLists,
    initial_ids: Vec<usize>,
    depths: Vec<u32>,
    pending_initials: Vec<Vec<u64>>,
    trunc: Truncation,
}

/// A successor reference produced by the worker phase of one level.
#[derive(Debug, Clone, Copy)]
enum SuccessorRef {
    /// The successor is already numbered in the (frozen) final arena.
    Known(u32),
    /// First seen this level: lives in the scratch sharded arena.
    Fresh(ShardedConfigId),
    /// The scratch arena refused the row: its shard's `u32` id space is
    /// exhausted. The commit pass records the source node as dirty under
    /// an id-space truncation — the graph degrades like a budget
    /// truncation instead of panicking mid-build.
    Exhausted,
}

/// One expanded chunk of a level's job: the flat successor list (in
/// node-major, transition-minor order) and, per node, its `(offset, len)`
/// span within that list — emitted by the workers directly so the commit
/// pass gets random access without re-walking or copying edges.
struct ChunkResult {
    chunk: usize,
    edges: Vec<(u32, SuccessorRef)>,
    spans: Vec<(u32, u32)>,
}

/// One BFS level's shared work description for the parallel engine.
///
/// The main thread publishes a job (one scratch epoch's rows in
/// deterministic shard-major order), all workers claim chunks via
/// `next_chunk` and push their [`ChunkResult`]s into `results`; the main
/// thread later reassembles the chunks for that level's deterministic
/// commit pass — which, under the pipelined protocol, runs **while** the
/// workers are already expanding the next job.
struct LevelJob {
    rows: Vec<u64>,
    /// Per-node flag: `false` = the node is over the agent budget and is
    /// stored without being expanded (workers report zero successors and
    /// the commit pass records the incompleteness).
    expand: Vec<bool>,
    width: usize,
    count: usize,
    chunk_size: usize,
    next_chunk: AtomicUsize,
    results: Mutex<Vec<ChunkResult>>,
}

impl LevelJob {
    fn empty() -> Self {
        LevelJob {
            rows: Vec::new(),
            expand: Vec::new(),
            width: 0,
            count: 0,
            chunk_size: 1,
            next_chunk: AtomicUsize::new(0),
            results: Mutex::new(Vec::new()),
        }
    }
}

/// Maps a frontier node back to its position in the level job that
/// expanded it.
enum JobIndex {
    /// The job was built after the previous commit, from the frontier's
    /// contiguous arena rows in id order (the inline path): a node's
    /// position is its id offset, and the commit scans sequentially.
    Identity,
    /// The job was built before the previous commit, from one scratch
    /// epoch in shard-major, local-minor order (the pipelined path): a
    /// row's position is its shard's cumulative offset plus its local id
    /// relative to the epoch start of that shard.
    Epoch { start: Vec<u32>, offset: Vec<u32> },
}

impl JobIndex {
    fn position(&self, id_offset: usize, sids: &[ShardedConfigId]) -> usize {
        match self {
            JobIndex::Identity => id_offset,
            JobIndex::Epoch { start, offset } => {
                let sid = sids[id_offset];
                offset[sid.shard()] as usize + (sid.local() - start[sid.shard()] as usize)
            }
        }
    }
}

/// Epoch-tagged map from scratch [`ShardedConfigId`]s to committed global
/// ids (`u32::MAX` = not committed). Entries are stored relative to a
/// per-shard retirement base, so the map — like the scratch arena itself —
/// only ever holds the two live epochs of the pipeline.
struct SidMap {
    base: Vec<u32>,
    slots: Vec<Vec<u32>>,
}

impl SidMap {
    fn new(shards: usize) -> Self {
        SidMap {
            base: vec![0; shards],
            slots: vec![Vec::new(); shards],
        }
    }

    fn get(&self, sid: ShardedConfigId) -> Option<u32> {
        let slot = sid
            .local()
            .checked_sub(self.base[sid.shard()] as usize)
            .expect("retired scratch id queried");
        match self.slots[sid.shard()].get(slot) {
            Some(&global) if global != u32::MAX => Some(global),
            _ => None,
        }
    }

    fn set(&mut self, sid: ShardedConfigId, global: u32) {
        let slot = sid
            .local()
            .checked_sub(self.base[sid.shard()] as usize)
            .expect("retired scratch id assigned");
        let slots = &mut self.slots[sid.shard()];
        if slots.len() <= slot {
            slots.resize(slot + 1, u32::MAX);
        }
        slots[slot] = global;
    }

    /// Drops every entry whose local id lies below `lens[shard]` — the
    /// epoch analogue of [`ShardedArena::retire_below`]. Retired entries
    /// are never queried again: commits only resolve scratch ids from the
    /// two live epochs.
    fn retire_below(&mut self, lens: &[u32]) {
        for (shard, &cut) in lens.iter().enumerate() {
            let cut = cut.max(self.base[shard]);
            let drop = (cut - self.base[shard]) as usize;
            let slots = &mut self.slots[shard];
            slots.drain(..drop.min(slots.len()));
            self.base[shard] = cut;
        }
    }
}

/// Random-access view over one level's expansion results: for each job
/// position, the successor references produced for that node, in
/// transition order. Chunks are kept as the workers produced them — the
/// per-node spans they emitted make lookup O(1) without copying a single
/// edge.
struct LevelResults {
    results: Vec<ChunkResult>,
    chunk_size: usize,
}

impl LevelResults {
    fn assemble(mut results: Vec<ChunkResult>, count: usize, chunk_size: usize) -> Self {
        results.sort_unstable_by_key(|r| r.chunk);
        debug_assert!(results.iter().enumerate().all(|(i, r)| r.chunk == i));
        debug_assert_eq!(
            results.iter().map(|r| r.spans.len()).sum::<usize>(),
            count,
            "every job position reported successors"
        );
        let _ = count;
        LevelResults {
            results,
            chunk_size,
        }
    }

    fn successors(&self, position: usize) -> &[(u32, SuccessorRef)] {
        let chunk = &self.results[position / self.chunk_size];
        let (offset, len) = chunk.spans[position - chunk.chunk * self.chunk_size];
        &chunk.edges[offset as usize..offset as usize + len as usize]
    }
}

/// Gathers one scratch epoch into a level job plus the [`JobIndex`] that
/// maps a node's scratch id back to its job position. `rows`/`expand` are
/// recycled buffers from a committed job.
fn build_level_job(
    sharded: &ShardedArena,
    from: &[u32],
    to: &[u32],
    limits: &ExplorationLimits,
    width: usize,
    mut rows: Vec<u64>,
    mut expand: Vec<bool>,
) -> (LevelJob, JobIndex) {
    rows.clear();
    expand.clear();
    let mut offset = Vec::with_capacity(from.len());
    let mut count = 0usize;
    for shard in 0..from.len() {
        offset.push(u32::try_from(count).expect("job position fits u32"));
        count += (to[shard] - from[shard]) as usize;
    }
    rows.reserve(count * width);
    expand.reserve(count);
    sharded.for_each_in_range(from, to, |_, _, total, row| {
        expand.push(limits.max_agents.is_none_or(|max| total <= max));
        rows.extend_from_slice(row);
    });
    (
        LevelJob {
            rows,
            expand,
            width,
            count,
            chunk_size: count.max(1),
            next_chunk: AtomicUsize::new(0),
            results: Mutex::new(Vec::new()),
        },
        JobIndex::Epoch {
            start: from.to_vec(),
            offset,
        },
    )
}

/// Builds an inline level job from the frontier's already-published arena
/// rows, in id order — the [`JobIndex::Identity`] layout whose commit
/// scans results sequentially (no shard indirection, no random access).
fn build_frontier_job(
    arena: &ConfigArena,
    frontier: std::ops::Range<usize>,
    limits: &ExplorationLimits,
    width: usize,
    mut rows: Vec<u64>,
    mut expand: Vec<bool>,
) -> LevelJob {
    rows.clear();
    expand.clear();
    let count = frontier.len();
    rows.reserve(count * width);
    expand.reserve(count);
    for id in frontier {
        let id = ConfigId(u32::try_from(id).expect("node id fits u32"));
        let total = arena.total(id);
        expand.push(limits.max_agents.is_none_or(|max| total <= max));
        rows.extend_from_slice(arena.row(id));
    }
    LevelJob {
        rows,
        expand,
        width,
        count,
        chunk_size: count.max(1),
        next_chunk: AtomicUsize::new(0),
        results: Mutex::new(Vec::new()),
    }
}

/// The deterministic commit of one level: replays the expansion results in
/// frontier × transition order, assigning dense ids exactly as the
/// sequential BFS would — resolving already-known successors through the
/// epoch-tagged [`SidMap`] and admitting first-seen rows against the
/// configuration budget. Returns the scratch ids committed as the next
/// frontier, in id order.
///
/// This pass never touches the frozen arena (rows are published to it at
/// the next pipeline sync), which is what lets it run concurrently with
/// the workers' expansion of the next level.
#[allow(clippy::too_many_arguments)]
fn commit_level(
    frontier: std::ops::Range<usize>,
    frontier_sids: &[ShardedConfigId],
    index: &JobIndex,
    job: &LevelJob,
    results: &LevelResults,
    map: &mut SidMap,
    edges: &mut EdgeLists,
    next_id: &mut usize,
    cap: usize,
    trunc: &mut Truncation,
    dirty: &mut Vec<DirtyNode>,
    depths: &mut Vec<u32>,
    child_depth: u32,
) -> Vec<ShardedConfigId> {
    let mut committed = Vec::new();
    for global in frontier.clone() {
        let position = index.position(global - frontier.start, frontier_sids);
        if !job.expand[position] {
            // Over the agent budget: stored but never expanded, exactly
            // like the sequential search (which records the same dirty
            // node, watermark and truncation flag — `next_id` mirrors the
            // sequential arena length at this point of the replay).
            trunc.agents = true;
            dirty.push(DirtyNode {
                id: u32::try_from(global).expect("node id fits u32"),
                watermark: u32::try_from(*next_id).expect("arena len fits u32"),
            });
            continue;
        }
        let mut blocked = false;
        for &(transition, successor) in results.successors(position) {
            let to = match successor {
                SuccessorRef::Known(id) => id as usize,
                SuccessorRef::Exhausted => {
                    // The scratch arena could not even hold the row: the
                    // node keeps its recorded edges to known successors
                    // and stays dirty, and the build reports an id-space
                    // truncation (a more permissive arena may resume it).
                    trunc.id_space = true;
                    blocked = true;
                    continue;
                }
                SuccessorRef::Fresh(sid) => match map.get(sid) {
                    Some(assigned) => assigned as usize,
                    None => {
                        if *next_id >= cap {
                            trunc.config = true;
                            blocked = true;
                            continue;
                        }
                        let assigned = *next_id;
                        *next_id += 1;
                        map.set(sid, assigned as u32);
                        edges.push(Vec::new());
                        depths.push(child_depth);
                        committed.push(sid);
                        assigned
                    }
                },
            };
            edges[global].push((transition as usize, to));
        }
        if blocked {
            dirty.push(DirtyNode {
                id: u32::try_from(global).expect("node id fits u32"),
                watermark: u32::try_from(*next_id).expect("arena len fits u32"),
            });
        }
    }
    committed
}

/// Worker body: claims frontier chunks, fires every transition on the
/// packed word rows, and resolves each successor — against the frozen
/// final arena first (a lock-free read; backward and lateral edges end
/// here), falling back to an intern into the sharded scratch arena for
/// rows first seen this level. Pure fan-out — all ordering decisions
/// happen in the main thread's renumbering pass. Takes the packed
/// transitions rather than the whole engine so worker threads need no
/// bounds on `P`.
fn expand_level_chunks(
    job: &LevelJob,
    transitions: &[PackedTransition],
    frozen: &ConfigArena,
    sharded: &ShardedArena,
) {
    // relaxed: test-only fault flag, set before the build starts.
    let exhaust_faults = fault_injection::EXHAUST_SCRATCH_IDS.load(Ordering::Relaxed);
    let mut succ = Vec::new();
    loop {
        // relaxed: pure work-claiming counter — the fetch_add's atomicity
        // alone makes claims disjoint; chunk results are renumbered
        // deterministically afterwards, so claim order carries no data.
        let chunk = job.next_chunk.fetch_add(1, Ordering::Relaxed);
        let start = chunk * job.chunk_size;
        if start >= job.count {
            break;
        }
        let end = (start + job.chunk_size).min(job.count);
        let mut edges: Vec<(u32, SuccessorRef)> =
            Vec::with_capacity((end - start) * transitions.len());
        let mut spans: Vec<(u32, u32)> = Vec::with_capacity(end - start);
        for node in start..end {
            let offset = edges.len() as u32;
            if !job.expand[node] {
                spans.push((offset, 0));
                continue;
            }
            let src = &job.rows[node * job.width..(node + 1) * job.width];
            for (t, transition) in transitions.iter().enumerate() {
                if !transition.is_enabled_words(src) {
                    continue;
                }
                transition.fire_words(src, &mut succ);
                let hash = crate::arena::hash_row(&succ);
                let successor = match frozen.lookup_prehashed(hash, &succ) {
                    Some(id) => SuccessorRef::Known(id.0),
                    None if exhaust_faults => SuccessorRef::Exhausted,
                    None => match sharded.try_intern_hashed(hash, &succ) {
                        Some(sid) => SuccessorRef::Fresh(sid),
                        None => SuccessorRef::Exhausted,
                    },
                };
                edges.push((t as u32, successor));
            }
            spans.push((offset, edges.len() as u32 - offset));
        }
        crate::arena::spin_lock(&job.results).push(ChunkResult {
            chunk,
            edges,
            spans,
        });
    }
}

/// Expands one node in the sequential interning order: rebuilds its edge
/// list from scratch (fire every transition in index order, resolve each
/// successor by dedup lookup or a budgeted intern). Returns `true` when the
/// configuration budget refused some successor — the node stays dirty.
///
/// This single body is the semantic definition of "expanding a node"; the
/// cold sequential build, the resume replay and the resume continuation all
/// share it, which is what makes resumed graphs bit-identical to cold ones.
#[allow(clippy::too_many_arguments)]
fn expand_one(
    transitions: &[PackedTransition],
    arena: &mut ConfigArena,
    edges: &mut EdgeLists,
    depths: &mut Vec<u32>,
    id: usize,
    depth: u32,
    cap: usize,
    trunc: &mut Truncation,
    src: &mut Vec<u64>,
    succ: &mut Vec<u64>,
) -> bool {
    src.clear();
    src.extend_from_slice(arena.row(ConfigId(id as u32)));
    edges[id].clear();
    let mut blocked = false;
    for (t, transition) in transitions.iter().enumerate() {
        if !transition.is_enabled_words(src) {
            continue;
        }
        transition.fire_words(src, succ);
        let to = if let Some(existing) = arena.lookup(succ) {
            existing.index()
        } else if arena.len() >= cap {
            trunc.config = true;
            blocked = true;
            continue;
        } else {
            let fresh = arena.intern(succ);
            edges.push(Vec::new());
            depths.push(depth + 1);
            fresh.index()
        };
        edges[id].push((t, to));
    }
    blocked
}

/// The sequential breadth-first expansion of nodes `start..` in id order.
///
/// Node ids are assigned in discovery order, so scanning ids *is* the BFS
/// queue: every node interned during the scan is reached by the scan. Used
/// by the cold sequential build (`start = 0`) and by the continuation phase
/// of [`ReachabilityGraph::resume`] (`start` = first fresh id).
#[allow(clippy::too_many_arguments)]
fn scan_expand(
    transitions: &[PackedTransition],
    arena: &mut ConfigArena,
    edges: &mut EdgeLists,
    depths: &mut Vec<u32>,
    dirty: &mut Vec<DirtyNode>,
    trunc: &mut Truncation,
    limits: &ExplorationLimits,
    start: usize,
) {
    let cap = limits.effective_max_configurations();
    let mut src = Vec::new();
    let mut succ = Vec::new();
    let mut id = start;
    while id < arena.len() {
        let depth = depths[id];
        if limits.max_depth.is_some_and(|max| depth as usize >= max) {
            trunc.depth = true;
            dirty.push(DirtyNode {
                id: id as u32,
                watermark: u32::try_from(arena.len()).expect("arena len fits u32"),
            });
            id += 1;
            continue;
        }
        if limits
            .max_agents
            .is_some_and(|max| arena.total(ConfigId(id as u32)) > max)
        {
            trunc.agents = true;
            dirty.push(DirtyNode {
                id: id as u32,
                watermark: u32::try_from(arena.len()).expect("arena len fits u32"),
            });
            id += 1;
            continue;
        }
        if expand_one(
            transitions,
            arena,
            edges,
            depths,
            id,
            depth,
            cap,
            trunc,
            &mut src,
            &mut succ,
        ) {
            dirty.push(DirtyNode {
                id: id as u32,
                watermark: u32::try_from(arena.len()).expect("arena len fits u32"),
            });
        }
        id += 1;
    }
}

impl<P: Clone + Ord> ReachabilityGraph<P> {
    /// Explores the reachability graph of `net` from `initial` breadth-first
    /// on the single-threaded engine.
    ///
    /// Equivalent to [`build_with`](Self::build_with) with
    /// [`Parallelism::Sequential`].
    ///
    /// **Deprecated**: use the session API instead —
    /// [`Analysis::new`](crate::session::Analysis::new)`(net).reachability(initial).limits(l).run()`.
    #[deprecated(
        note = "open an `Analysis` session instead: `Analysis::new(net).reachability(initial).limits(l).run()` compiles the net once and can resume truncated graphs"
    )]
    #[must_use]
    pub fn build<I: IntoIterator<Item = Multiset<P>>>(
        net: &PetriNet<P>,
        initial: I,
        limits: &ExplorationLimits,
    ) -> Self {
        Self::build_one_shot(net, initial, limits, Parallelism::Sequential)
    }

    /// Explores the reachability graph of `net` from `initial` breadth-first.
    ///
    /// The search runs on the dense interned engine
    /// ([`CompiledNet`] + [`ConfigArena`]): configurations are dense rows
    /// deduplicated by hash interning and successors are produced by slice
    /// arithmetic. The sparse [`Multiset`] views returned by
    /// [`node`](Self::node) are materialized lazily, on first access.
    ///
    /// With [`Parallelism::Parallel`], each BFS level is expanded by
    /// cooperating worker threads over a hash-sharded scratch arena
    /// ([`ShardedArena`]) and the discoveries are renumbered afterwards in
    /// the exact order the sequential search would have made them — node
    /// ids, edges, and the completion taxonomy are **identical** across all
    /// modes and worker counts, so parallelism is purely a speed knob.
    ///
    /// **Deprecated**: use the session API instead —
    /// [`Analysis::new`](crate::session::Analysis::new)`(net).reachability(initial).limits(l).parallelism(p).run()`.
    #[deprecated(
        note = "open an `Analysis` session instead: `Analysis::new(net).reachability(initial).limits(l).parallelism(p).run()` compiles the net once and can resume truncated graphs"
    )]
    #[must_use]
    pub fn build_with<I: IntoIterator<Item = Multiset<P>>>(
        net: &PetriNet<P>,
        initial: I,
        limits: &ExplorationLimits,
        parallelism: Parallelism,
    ) -> Self {
        Self::build_one_shot(net, initial, limits, parallelism)
    }

    /// The pre-session one-shot build: compiles a dedicated engine over the
    /// net plus the initial supports, then explores. Backs the deprecated
    /// [`build`](Self::build)/[`build_with`](Self::build_with) shims.
    fn build_one_shot<I: IntoIterator<Item = Multiset<P>>>(
        net: &PetriNet<P>,
        initial: I,
        limits: &ExplorationLimits,
        parallelism: Parallelism,
    ) -> Self {
        let initial_configs: Vec<Multiset<P>> = initial.into_iter().collect();
        let engine = Arc::new(CompiledNet::compile_with_places(
            net,
            initial_configs.iter().flat_map(|c| c.support().cloned()),
        ));
        Self::build_on(engine, &initial_configs, limits, parallelism)
    }

    /// Explores from `initial` on an already-compiled engine — the session
    /// entry point ([`Analysis`](crate::session::Analysis) owns the shared
    /// engine). Every initial configuration must fit the engine's place
    /// universe.
    pub(crate) fn build_on(
        engine: Arc<CompiledNet<P>>,
        initial_configs: &[Multiset<P>],
        limits: &ExplorationLimits,
        parallelism: Parallelism,
    ) -> Self {
        if parallelism.is_parallel() {
            Self::build_parallel(engine, initial_configs, limits, parallelism.workers())
        } else {
            Self::build_sequential(engine, initial_configs, limits)
        }
    }

    /// Interns the initial configurations, returning the seed state both
    /// build paths start from, so their numbering agrees from node 0.
    ///
    /// This is also where the packed [`RowLayout`] is decided: it is a
    /// pure function of the engine, the largest initial total, the
    /// agent cap and the node budget ([`CompiledNet::row_layout`]), so
    /// sequential, parallel and resumed builds all agree on the
    /// representation.
    fn intern_initial(
        engine: &CompiledNet<P>,
        initial_configs: &[Multiset<P>],
        limits: &ExplorationLimits,
    ) -> SeedState {
        let dense_rows: Vec<Vec<u64>> = initial_configs
            .iter()
            .map(|config| {
                engine
                    .to_dense(config)
                    .expect("initial supports are part of the compiled universe")
            })
            .collect();
        let max_initial_total = dense_rows
            .iter()
            .map(|row| row.iter().sum::<u64>())
            .max()
            .unwrap_or(0);
        let layout = engine.row_layout(
            max_initial_total,
            limits.max_agents,
            limits.effective_max_configurations(),
        );
        let mut arena = ConfigArena::with_layout(layout);
        let mut edges: EdgeLists = Vec::new();
        let mut initial_ids: Vec<usize> = Vec::new();
        let mut depths: Vec<u32> = Vec::new();
        let mut pending_initials: Vec<Vec<u64>> = Vec::new();
        let mut trunc = Truncation::default();
        for row in dense_rows {
            // The width bound covers every initial total, so the pack
            // cannot overflow a cell.
            let packed = arena.layout().pack(&row);
            let id = if let Some(id) = arena.lookup(&packed) {
                Some(id.index())
            } else if arena.len() >= limits.effective_max_configurations() {
                None
            } else {
                let id = arena.intern(&packed);
                edges.push(Vec::new());
                depths.push(0);
                Some(id.index())
            };
            match id {
                Some(id) => {
                    if !initial_ids.contains(&id) {
                        initial_ids.push(id);
                    }
                }
                None => {
                    trunc.config = true;
                    // Pending initials are kept *unpacked*: they outlive
                    // the build and must survive a layout change on the
                    // resume path.
                    pending_initials.push(row);
                }
            }
        }
        SeedState {
            arena,
            edges,
            initial_ids,
            depths,
            pending_initials,
            trunc,
        }
    }

    fn build_sequential(
        engine: Arc<CompiledNet<P>>,
        initial_configs: &[Multiset<P>],
        limits: &ExplorationLimits,
    ) -> Self {
        let SeedState {
            mut arena,
            mut edges,
            initial_ids,
            mut depths,
            pending_initials,
            mut trunc,
        } = Self::intern_initial(&engine, initial_configs, limits);
        let packed = engine.packed_transitions(arena.layout());
        let mut dirty: Vec<DirtyNode> = Vec::new();
        scan_expand(
            &packed,
            &mut arena,
            &mut edges,
            &mut depths,
            &mut dirty,
            &mut trunc,
            limits,
            0,
        );
        Self::finish(
            engine,
            arena,
            edges,
            initial_ids,
            depths,
            dirty,
            pending_initials,
            trunc,
            limits,
        )
    }

    /// The sharded **pipelined** level-synchronous parallel search.
    ///
    /// The engine alternates between two regimes, level by level:
    ///
    /// * **Direct** — while no workers are in flight (small levels, and
    ///   every level under `Parallel(1)`), a level is one fused
    ///   sequential step: frontier rows are expanded in id order and
    ///   fresh successors interned straight into the arena, exactly the
    ///   sequential BFS step. No scratch, no barriers, no deferred
    ///   commit — deep narrow graphs run at sequential speed.
    ///
    /// * **Pipelined** — once a level reaches `PARALLEL_LEVEL_MIN`
    ///   candidates (and `Parallel(n ≥ 2)` provides workers), its
    ///   lifecycle splits into *expand* and *commit*, and the two stages
    ///   **overlap**: while the main thread commits level *d* — replaying
    ///   the workers\' discoveries in frontier × transition order,
    ///   assigning dense [`ConfigId`]s exactly as the sequential BFS
    ///   would — the workers already expand level *d+1*, resolving rows
    ///   first seen at level *d* through their stable scratch ids
    ///   ([`ShardedArena`] retains the two live epochs) instead of
    ///   waiting for their global numbers. Only the brief sync point
    ///   between levels stays serial: publishing the freshly committed
    ///   rows into the frozen arena, retiring the oldest scratch epoch,
    ///   and handing over the next job.
    ///
    /// Both regimes replay discoveries in the exact sequential interning
    /// order (including budget truncation decisions), so the resulting
    /// graph is bit-identical to [`build_sequential`]\'s for every worker
    /// count.
    ///
    /// A panicking worker marks the build as poisoned and the panic is
    /// re-raised from the main thread once the current level drains — the
    /// barrier protocol never deadlocks on a dead worker.
    ///
    /// [`build_sequential`]: Self::build_sequential
    fn build_parallel(
        engine: Arc<CompiledNet<P>>,
        initial_configs: &[Multiset<P>],
        limits: &ExplorationLimits,
        workers: usize,
    ) -> Self {
        /// Don\'t wake the workers for levels smaller than this.
        const PARALLEL_LEVEL_MIN: usize = 512;

        let cap = limits.effective_max_configurations();
        let SeedState {
            arena,
            mut edges,
            initial_ids,
            mut depths,
            pending_initials,
            mut trunc,
        } = Self::intern_initial(&engine, initial_configs, limits);
        // The job/row machinery works on stored words: `width` here is
        // the packed stride, not the place count.
        let width = arena.stride();
        let packed = engine.packed_transitions(arena.layout());
        let mut dirty: Vec<DirtyNode> = Vec::new();
        let mut next_id = arena.len();

        // Scratch dedup arena plus the epoch-tagged map to final ids.
        let sharded = ShardedArena::with_layout(arena.layout().clone(), workers * 8);
        let num_shards = sharded.num_shards();
        let mut map = SidMap::new(num_shards);

        // The current frontier: ids `[start, end)`, its scratch ids
        // (empty for frontiers whose rows the arena already holds in id
        // order), and its BFS depth.
        let mut frontier_sids: Vec<ShardedConfigId> = Vec::new();
        let mut frontier_start = 0usize;
        let mut frontier_end = next_id;
        let mut depth = 0usize;
        // Whether the frontier\'s rows are already in the frozen arena
        // (true except right after an overlapped commit).
        let mut prepublished = true;

        // The level whose expansion results are awaiting their commit:
        // its job, result chunks, and position index. `None` in the
        // direct regime.
        let mut pending: Option<(LevelJob, JobIndex, Vec<ChunkResult>)> = None;

        // Epoch boundaries (per-shard scratch lengths): `b_prev` opens the
        // newest finished epoch, `b_prev2` the one before it. Rows retire
        // one sync after publication, map entries one sync after that.
        let mut b_prev2 = vec![0u32; num_shards];
        let mut b_prev = vec![0u32; num_shards];

        let transitions = &packed;
        let spawned = workers.saturating_sub(1);
        // relaxed: test-only fault flags, set before the build starts; no
        // ordering with any other memory is needed.
        let force_workers = fault_injection::PANIC_IN_WORKERS.load(Ordering::Relaxed)
            || fault_injection::EXHAUST_SCRATCH_IDS.load(Ordering::Relaxed);
        // Two barrier crossings hand each level off: workers park between
        // levels (a busy-spin variant was measured to be strictly worse on
        // CPU-throttled hosts, where a spinning worker steals cycles from
        // the committing thread).
        let barrier = Barrier::new(spawned + 1);
        let done = AtomicBool::new(false);
        let worker_panicked = AtomicBool::new(false);
        let job_slot: RwLock<LevelJob> = RwLock::new(LevelJob::empty());
        // Workers read the frozen arena during a level; the main thread
        // writes it only at the sync points (while the workers are parked
        // at the barrier), so neither side ever blocks on this lock.
        let arena_slot: RwLock<ConfigArena> = RwLock::new(arena);

        std::thread::scope(|scope| {
            // Workers are spawned lazily, on the first level big enough to
            // use them: graphs that never reach PARALLEL_LEVEL_MIN nodes
            // per level (the small-input regime) pay no thread cost at all.
            let mut workers_spawned = false;
            let mut spare_rows: Vec<u64> = Vec::new();
            let mut spare_flags: Vec<bool> = Vec::new();
            let mut src: Vec<u64> = Vec::new();
            let mut succ: Vec<u64> = Vec::new();

            // Installs the next job and wakes the workers (spawning them
            // on first use). Duplicated as a macro because the spawn
            // closure borrows the scope.
            macro_rules! dispatch {
                ($job:expr) => {{
                    let mut next_job = $job;
                    if !workers_spawned {
                        workers_spawned = true;
                        for _ in 0..spawned {
                            scope.spawn(|| loop {
                                barrier.wait();
                                if done.load(Ordering::Acquire) {
                                    break;
                                }
                                let outcome =
                                    std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                                        // relaxed: test-only fault flag, set
                                        // before the build starts; no ordering
                                        // with any other memory is needed.
                                        if fault_injection::PANIC_IN_WORKERS.load(Ordering::Relaxed)
                                        {
                                            // pp-lint: allow(panic-in-worker) — the injected
                                            // fault must be a genuine unwind so the catch +
                                            // poison protocol below stays covered by tests.
                                            panic!("injected worker panic (fault_injection)");
                                        }
                                        // A poisoned slot means another worker
                                        // panicked mid-level: report instead of
                                        // panicking so the main thread raises
                                        // one poisoned-build error, not a pile.
                                        let (Ok(frozen), Ok(job)) =
                                            (arena_slot.read(), job_slot.read())
                                        else {
                                            return false;
                                        };
                                        expand_level_chunks(&job, transitions, &frozen, &sharded);
                                        true
                                    }));
                                if !matches!(outcome, Ok(true)) {
                                    worker_panicked.store(true, Ordering::Release);
                                }
                                barrier.wait();
                            });
                        }
                    }
                    // Enough chunks that workers stay balanced, big enough
                    // that queue-claim traffic stays negligible.
                    next_job.chunk_size = (next_job.count.div_ceil(workers * 4)).clamp(1, 512);
                    *job_slot.write().expect("level job poisoned") = next_job;
                    barrier.wait(); // level start: workers read the new job
                }};
            }

            // Joins the workers\' expansion (the main thread claims chunks
            // too) and recovers the finished job with its results.
            macro_rules! drain {
                () => {{
                    {
                        let frozen = arena_slot.read().expect("arena lock poisoned");
                        let current = job_slot.read().expect("level job poisoned");
                        expand_level_chunks(&current, transitions, &frozen, &sharded);
                    }
                    barrier.wait(); // level end: all successors resolved
                    let mut finished = std::mem::replace(
                        &mut *job_slot.write().expect("level job poisoned"),
                        LevelJob::empty(),
                    );
                    let taken =
                        std::mem::take(finished.results.get_mut().expect("level results poisoned"));
                    (finished, taken)
                }};
            }

            loop {
                // ---- sync point: no worker is running ----
                if worker_panicked.load(Ordering::Acquire) {
                    break; // re-raised after the workers are released
                }
                // Publish the frontier\'s rows into the frozen arena: from
                // here on every thread resolves them lock-free.
                if !prepublished {
                    let mut arena = arena_slot.write().expect("arena lock poisoned");
                    for (offset, &sid) in frontier_sids.iter().enumerate() {
                        let id =
                            sharded.with_row(sid, |hash, row| arena.intern_prehashed(hash, row));
                        debug_assert_eq!(
                            id.index(),
                            frontier_start + offset,
                            "published ids must match the committed numbering"
                        );
                        let _ = (id, offset);
                    }
                    prepublished = true;
                }
                if frontier_start >= frontier_end {
                    break;
                }
                if let Some(max_depth) = limits.max_depth {
                    if depth >= max_depth {
                        // Stored but never expanded, like the sequential
                        // search reaching its depth budget: every frontier
                        // node is recorded as dirty, in id order, with the
                        // final arena length as its watermark (nothing
                        // interns after this point).
                        trunc.depth = true;
                        let watermark = u32::try_from(next_id).expect("arena len fits u32");
                        for id in frontier_start..frontier_end {
                            dirty.push(DirtyNode {
                                id: u32::try_from(id).expect("node id fits u32"),
                                watermark,
                            });
                        }
                        break;
                    }
                }

                let Some((mut job, job_index, results)) = pending.take() else {
                    // ---- direct regime: no expansion in flight ----
                    let count = frontier_end - frontier_start;
                    if spawned > 0 && (count >= PARALLEL_LEVEL_MIN || force_workers) {
                        // Promote: expand this frontier on the workers.
                        // There is nothing to overlap yet — the pipeline
                        // proper starts at the next iteration, when this
                        // level\'s commit overlaps the next expansion.
                        b_prev2 = std::mem::replace(&mut b_prev, sharded.snapshot_lens());
                        let promoted = {
                            let frozen = arena_slot.read().expect("arena lock poisoned");
                            build_frontier_job(
                                &frozen,
                                frontier_start..frontier_end,
                                limits,
                                width,
                                std::mem::take(&mut spare_rows),
                                std::mem::take(&mut spare_flags),
                            )
                        };
                        dispatch!(promoted);
                        let (finished, taken) = drain!();
                        pending = Some((finished, JobIndex::Identity, taken));
                        continue;
                    }
                    // One fused sequential step: expand in id order,
                    // interning fresh rows straight into the arena.
                    let mut arena = arena_slot.write().expect("arena lock poisoned");
                    for id in frontier_start..frontier_end {
                        let node = ConfigId(u32::try_from(id).expect("node id fits u32"));
                        if let Some(max_agents) = limits.max_agents {
                            if arena.total(node) > max_agents {
                                trunc.agents = true;
                                dirty.push(DirtyNode {
                                    id: node.0,
                                    watermark: u32::try_from(arena.len())
                                        .expect("arena len fits u32"),
                                });
                                continue;
                            }
                        }
                        src.clear();
                        src.extend_from_slice(arena.row(node));
                        let mut blocked = false;
                        for (t, transition) in transitions.iter().enumerate() {
                            if !transition.is_enabled_words(&src) {
                                continue;
                            }
                            transition.fire_words(&src, &mut succ);
                            let to = match arena.lookup(&succ) {
                                Some(existing) => existing.index(),
                                None => {
                                    if arena.len() >= cap {
                                        trunc.config = true;
                                        blocked = true;
                                        continue;
                                    }
                                    let fresh = arena.intern(&succ);
                                    edges.push(Vec::new());
                                    depths.push(u32::try_from(depth + 1).expect("depth fits u32"));
                                    fresh.index()
                                }
                            };
                            edges[id].push((t, to));
                        }
                        if blocked {
                            dirty.push(DirtyNode {
                                id: node.0,
                                watermark: u32::try_from(arena.len()).expect("arena len fits u32"),
                            });
                        }
                    }
                    next_id = arena.len();
                    drop(arena);
                    frontier_start = frontier_end;
                    frontier_end = next_id;
                    frontier_sids.clear();
                    depth += 1;
                    continue;
                };

                // ---- pipelined regime: commit the pending level ----
                // Epoch handoff: the newest scratch epoch holds the rows
                // first seen while expanding the pending level — the
                // candidate superset of the next one. The epoch before it
                // was published and its rows retire now (its map entries
                // one sync later).
                let b_now = sharded.snapshot_lens();
                sharded.retire_below(&b_prev);
                map.retire_below(&b_prev2);
                let epoch_count: usize = b_now
                    .iter()
                    .zip(&b_prev)
                    .map(|(now, prev)| (now - prev) as usize)
                    .sum();

                let expand_next =
                    epoch_count > 0 && limits.max_depth.is_none_or(|max| depth + 1 < max);
                let use_workers = expand_next
                    && spawned > 0
                    && (epoch_count >= PARALLEL_LEVEL_MIN || force_workers);
                let mut next_index = JobIndex::Identity;
                if use_workers {
                    // Hand the whole epoch (shard-major layout, stable
                    // scratch ids) to the workers *before* this level\'s
                    // commit decides the epoch\'s final ids.
                    let (next_job, index) = build_level_job(
                        &sharded,
                        &b_prev,
                        &b_now,
                        limits,
                        width,
                        std::mem::take(&mut spare_rows),
                        std::mem::take(&mut spare_flags),
                    );
                    next_index = index;
                    dispatch!(next_job);
                }

                // ---- overlapped region: workers expand the next level ----
                // Commit the pending level: replay its expansion results
                // in frontier × transition order, assigning ids exactly in
                // the sequential interning order.
                let level = LevelResults::assemble(results, job.count, job.chunk_size);
                let committed = commit_level(
                    frontier_start..frontier_end,
                    &frontier_sids,
                    &job_index,
                    &job,
                    &level,
                    &mut map,
                    &mut edges,
                    &mut next_id,
                    cap,
                    &mut trunc,
                    &mut dirty,
                    &mut depths,
                    u32::try_from(depth + 1).expect("depth fits u32"),
                );
                // Reclaim the committed job\'s buffers for the next build.
                spare_rows = std::mem::take(&mut job.rows);
                spare_flags = std::mem::take(&mut job.expand);

                if use_workers {
                    let (finished, taken) = drain!();
                    pending = Some((finished, next_index, taken));
                    prepublished = false; // published at the next sync point
                } else {
                    // Demote to the direct regime: publish the fresh rows
                    // now (no worker is in flight) so the next direct step
                    // reads them straight from the arena.
                    let _ = next_index;
                    let mut arena = arena_slot.write().expect("arena lock poisoned");
                    for (offset, &sid) in committed.iter().enumerate() {
                        let id =
                            sharded.with_row(sid, |hash, row| arena.intern_prehashed(hash, row));
                        debug_assert_eq!(
                            id.index(),
                            frontier_end + offset,
                            "published ids must match the committed numbering"
                        );
                        let _ = (id, offset);
                    }
                    prepublished = true;
                }

                if committed.is_empty() {
                    break;
                }
                frontier_start = frontier_end;
                frontier_end = next_id;
                frontier_sids = committed;
                depth += 1;
                b_prev2 = std::mem::replace(&mut b_prev, b_now);
            }

            if workers_spawned {
                done.store(true, Ordering::Release);
                barrier.wait(); // release the workers into their exit path
            }
        });

        assert!(
            !worker_panicked.load(Ordering::Acquire),
            "a parallel exploration worker panicked; the build is poisoned"
        );
        let arena = arena_slot.into_inner().expect("arena lock poisoned");
        debug_assert_eq!(arena.len(), next_id, "every committed row was published");
        Self::finish(
            engine,
            arena,
            edges,
            initial_ids,
            depths,
            dirty,
            pending_initials,
            trunc,
            limits,
        )
    }

    #[allow(clippy::too_many_arguments)]
    fn finish(
        engine: Arc<CompiledNet<P>>,
        arena: ConfigArena,
        edges: EdgeLists,
        initial: Vec<usize>,
        depths: Vec<u32>,
        dirty: Vec<DirtyNode>,
        pending_initials: Vec<Vec<u64>>,
        trunc: Truncation,
        limits: &ExplorationLimits,
    ) -> Self {
        debug_assert_eq!(depths.len(), arena.len(), "one depth per node");
        debug_assert!(
            dirty.windows(2).all(|w| w[0].id < w[1].id),
            "dirty ids ascend"
        );
        let sparse_views = (0..arena.len()).map(|_| OnceLock::new()).collect();
        ReachabilityGraph {
            engine,
            arena,
            sparse_views,
            edges,
            initial,
            completion: trunc.completion(limits),
            limits: *limits,
            depths,
            dirty,
            pending_initials,
        }
    }

    /// The compiled engine the graph was explored with (shared with the
    /// [`Analysis`](crate::session::Analysis) session that built it).
    #[must_use]
    pub fn engine(&self) -> &CompiledNet<P> {
        &self.engine
    }

    /// The dense row of node `id` (one counter per engine place),
    /// decoded from the packed stored row.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of bounds.
    #[must_use]
    pub fn dense_node(&self, id: usize) -> Vec<u64> {
        self.arena.layout().unpack(self.packed_node(id))
    }

    /// The stored (packed) row of node `id`: `layout().words_per_row()`
    /// words in the graph's [`row_layout`](Self::row_layout). Under the
    /// uncompressed `u64` layout this is one counter per place.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of bounds.
    #[must_use]
    pub fn packed_node(&self, id: usize) -> &[u64] {
        self.arena.row(crate::arena::ConfigId(
            u32::try_from(id).expect("node id fits u32"),
        ))
    }

    /// The packed row layout configurations are stored in (a pure
    /// function of the engine, the initial totals and the agent cap —
    /// see [`CompiledNet::row_layout`]).
    #[must_use]
    pub fn row_layout(&self) -> &RowLayout {
        self.arena.layout()
    }

    /// Stored bytes per node in the interned arena (row payload padded
    /// to whole words) — the `bytes_per_node` figure the benches report.
    #[must_use]
    pub fn bytes_per_node(&self) -> usize {
        self.arena.layout().stored_bytes_per_row()
    }

    /// Number of stored configurations.
    #[must_use]
    pub fn len(&self) -> usize {
        self.arena.len()
    }

    /// Returns `true` if the graph stores no configuration.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.arena.is_empty()
    }

    /// Returns `true` if no exploration limit was hit.
    ///
    /// Shim over [`completion`](Self::completion), which additionally says
    /// *which* limit truncated the graph.
    #[must_use]
    pub fn is_complete(&self) -> bool {
        self.completion.is_complete()
    }

    /// How the exploration ended: [`Completion::Complete`], or the dominant
    /// limit that truncated it.
    #[must_use]
    pub fn completion(&self) -> Completion {
        self.completion
    }

    /// The exploration limits the graph was (last) built under.
    #[must_use]
    pub fn limits(&self) -> &ExplorationLimits {
        &self.limits
    }

    /// The BFS discovery depth of node `id` (0 for initial configurations).
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of bounds.
    #[must_use]
    pub fn depth_of(&self, id: usize) -> usize {
        self.depths[id] as usize
    }

    /// Extends a (possibly truncated) graph in place to the raised
    /// `limits`: the interned arena and every recorded edge list are
    /// reused, and only the *dirty frontier* — nodes stored but not fully
    /// expanded (over the agent cap, at the depth cap, or with successors
    /// the configuration budget refused) — re-expands, followed by the
    /// standard breadth-first continuation over the freshly admitted nodes.
    ///
    /// The result is **bit-identical** ([`identical_to`](Self::identical_to))
    /// to a cold build at `limits`, for graphs originally built by the
    /// sequential or the parallel engine alike: node numbering replays the
    /// exact sequential interning order, which both engines produce.
    /// Resuming a complete graph only updates the recorded limits.
    ///
    /// One shape cannot be replayed in place: an *agent-capped* node in the
    /// middle of the id sequence (later nodes kept interning after it was
    /// skipped) whose cap is now raised — a cold build would insert its
    /// successors mid-sequence. Such resumes transparently fall back to a
    /// cold rebuild (still mutating `self`), detected through the per-node
    /// watermarks of the dirty frontier; raising only `max_configurations`
    /// and/or `max_depth` always stays on the in-place path.
    ///
    /// This is the engine behind the [`Analysis`](crate::session::Analysis)
    /// session's resumable budgets; the re-expansion itself runs
    /// sequentially (the dirty frontier is typically a thin budget
    /// boundary).
    ///
    /// # Panics
    ///
    /// Panics if `limits` does not [dominate](ExplorationLimits::dominates)
    /// the limits the graph was built under — lowering a budget cannot be
    /// replayed in place; build a fresh graph instead.
    pub fn resume(&mut self, limits: &ExplorationLimits) {
        assert!(
            limits.dominates(&self.limits),
            "resume requires limits that dominate the built limits"
        );
        let cap = limits.effective_max_configurations();
        let mut trunc = Truncation::default();
        let first_new = self.arena.len();

        // In-place replay appends fresh ids at the end; that matches the
        // cold numbering only if every dirty node that will now re-expand
        // was skipped *after* the last intern of the old build (watermark
        // == arena length). A re-expandable mid-sequence hole — an
        // agent-capped node that later nodes out-interned — forces the
        // cold-rebuild path.
        let reopens_hole = self.dirty.iter().any(|d| {
            (d.watermark as usize) < first_new
                && limits
                    .max_depth
                    .is_none_or(|max| (self.depths[d.id as usize] as usize) < max)
                && limits
                    .max_agents
                    .is_none_or(|max| self.arena.total(ConfigId(d.id)) <= max)
        });
        // The packed row layout is a pure function of (engine, max initial
        // total, agent cap, node budget); the initial totals are recoverable from the
        // stored graph (interned initials plus budget-refused pending
        // initials — duplicates cannot change the max), so recomputation
        // reproduces the build-time value. If the *new* limits select a
        // different layout (a raised or dropped agent cap or node budget
        // widening the cells, or the gate flipped between builds), the
        // stored rows are in the wrong representation for the
        // continuation — rebuild cold, exactly like a reopened hole.
        let max_initial_total = self
            .initial
            .iter()
            .map(|&id| self.arena.total(ConfigId(id as u32)))
            .chain(
                self.pending_initials
                    .iter()
                    .map(|row| row.iter().sum::<u64>()),
            )
            .max()
            .unwrap_or(0);
        let layout_changed = self.engine.row_layout(
            max_initial_total,
            limits.max_agents,
            limits.effective_max_configurations(),
        ) != *self.arena.layout();
        if reopens_hole || layout_changed {
            let initial_configs: Vec<Multiset<P>> = self
                .initial
                .iter()
                .map(|&id| self.engine.to_sparse(&self.dense_node(id)))
                .chain(
                    self.pending_initials
                        .iter()
                        .map(|row| self.engine.to_sparse(row)),
                )
                .collect();
            *self = Self::build_sequential(self.engine.clone(), &initial_configs, limits);
            return;
        }
        let packed = self.engine.packed_transitions(self.arena.layout());

        // Phase 1: initial configurations the old budget refused, in
        // supplied order — exactly where a cold build would intern them
        // (a refused initial implies the arena was full, so no expansion
        // discovery ever claimed an id after it).
        let pending = std::mem::take(&mut self.pending_initials);
        for row in pending {
            // Pending initials are kept unpacked (they must survive layout
            // changes across reopens); the layout-stability check above
            // guarantees they fit the current cells.
            let packed_row = self.arena.layout().pack(&row);
            let id = if let Some(id) = self.arena.lookup(&packed_row) {
                Some(id.index())
            } else if self.arena.len() >= cap {
                None
            } else {
                let id = self.arena.intern(&packed_row);
                self.edges.push(Vec::new());
                self.depths.push(0);
                Some(id.index())
            };
            match id {
                Some(id) => {
                    if !self.initial.contains(&id) {
                        self.initial.push(id);
                    }
                }
                None => {
                    trunc.config = true;
                    self.pending_initials.push(row);
                }
            }
        }

        // Phase 2: replay the dirty frontier in id order — the order the
        // cold build expands them in — rebuilding each node's edge list
        // from scratch (deterministic, so recorded edges are reproduced
        // and the refused ones appear exactly where a cold build puts
        // them). Nodes still over a cap keep their old watermark (their
        // hole, if any, stays closed); re-marked nodes get the current
        // arena length, exactly as a cold build would record it.
        let old_dirty = std::mem::take(&mut self.dirty);
        let mut dirty: Vec<DirtyNode> = Vec::new();
        let mut src = Vec::new();
        let mut succ = Vec::new();
        for node in old_dirty {
            let id = node.id;
            let depth = self.depths[id as usize];
            // A node still over a cap is re-recorded with the watermark a
            // cold build would give it: a mid-sequence hole keeps its old
            // one (no fresh intern can precede it on the in-place path),
            // while a tail node sees everything interned so far.
            let still_capped = DirtyNode {
                id,
                watermark: if node.watermark as usize == first_new {
                    u32::try_from(self.arena.len()).expect("arena len fits u32")
                } else {
                    node.watermark
                },
            };
            if limits.max_depth.is_some_and(|max| depth as usize >= max) {
                trunc.depth = true;
                dirty.push(still_capped);
                continue;
            }
            if limits
                .max_agents
                .is_some_and(|max| self.arena.total(ConfigId(id)) > max)
            {
                trunc.agents = true;
                dirty.push(still_capped);
                continue;
            }
            if expand_one(
                &packed,
                &mut self.arena,
                &mut self.edges,
                &mut self.depths,
                id as usize,
                depth,
                cap,
                &mut trunc,
                &mut src,
                &mut succ,
            ) {
                dirty.push(DirtyNode {
                    id,
                    watermark: u32::try_from(self.arena.len()).expect("arena len fits u32"),
                });
            }
        }

        // Phase 3: the breadth-first continuation over every node admitted
        // since the old budget — freshly interned ids all lie past the old
        // arena length, and id order is BFS order.
        scan_expand(
            &packed,
            &mut self.arena,
            &mut self.edges,
            &mut self.depths,
            &mut dirty,
            &mut trunc,
            limits,
            first_new,
        );

        self.dirty = dirty;
        self.limits = *limits;
        self.completion = trunc.completion(limits);
        self.sparse_views
            .resize_with(self.arena.len(), OnceLock::new);
        debug_assert_eq!(self.depths.len(), self.arena.len(), "one depth per node");
    }

    /// The configuration of node `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of bounds.
    #[must_use]
    pub fn node(&self, id: usize) -> &Multiset<P> {
        self.sparse_views[id].get_or_init(|| self.engine.to_sparse(&self.dense_node(id)))
    }

    /// The node id of `config`, if it was reached.
    #[must_use]
    pub fn id_of(&self, config: &Multiset<P>) -> Option<usize> {
        let row = self.engine.to_dense(config)?;
        // A count that overflows the packed cells cannot equal any stored
        // row (the layout bound covers every reachable configuration).
        let mut packed = Vec::new();
        if !self.arena.layout().try_pack_into(&row, &mut packed) {
            return None;
        }
        self.arena.lookup(&packed).map(super::ConfigId::index)
    }

    /// The ids of the initial configurations.
    #[must_use]
    pub fn initial_ids(&self) -> &[usize] {
        &self.initial
    }

    /// Outgoing edges of node `id` as `(transition index, successor id)`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of bounds.
    #[must_use]
    pub fn successors(&self, id: usize) -> &[(usize, usize)] {
        &self.edges[id]
    }

    /// Returns `true` if `self` and `other` are the same graph node for
    /// node: same numbering, dense rows, edges, depths, initial ids,
    /// completion, dirty frontier and pending initials.
    ///
    /// This is the determinism contract of the whole engine family in one
    /// call — builds of the same input under any two [`Parallelism`] modes
    /// must satisfy it, and a [`resume`](Self::resume)d graph must satisfy
    /// it against a cold build at the final limits. The equivalence tests
    /// and `bench_parallel_explore --check` all go through this single
    /// definition.
    #[must_use]
    pub fn identical_to(&self, other: &Self) -> bool {
        self.len() == other.len()
            && self.completion == other.completion
            && self.initial == other.initial
            && self.depths == other.depths
            && self.dirty == other.dirty
            && self.pending_initials == other.pending_initials
            && self.ids().all(|id| {
                let same_row = if self.arena.layout() == other.arena.layout() {
                    // Same layout: the packed words are the canonical form,
                    // compare them directly (no unpacking).
                    self.packed_node(id) == other.packed_node(id)
                } else {
                    // Different layouts (e.g. packed vs. gate-disabled
                    // build): identical graphs decode to identical counts.
                    self.dense_node(id) == other.dense_node(id)
                };
                same_row && self.successors(id) == other.successors(id)
            })
    }

    /// Iterates over all node ids.
    pub fn ids(&self) -> impl Iterator<Item = usize> {
        0..self.arena.len()
    }

    /// The reverse adjacency lists (predecessor ids per node).
    #[must_use]
    pub fn predecessor_lists(&self) -> Vec<Vec<usize>> {
        let mut preds = vec![Vec::new(); self.arena.len()];
        for (from, edges) in self.edges.iter().enumerate() {
            for &(_, to) in edges {
                preds[to].push(from);
            }
        }
        preds
    }

    /// The set of nodes reachable from `from` (including `from` itself).
    ///
    /// # Panics
    ///
    /// Panics if `from` is out of bounds.
    #[must_use]
    pub fn reachable_from(&self, from: usize) -> BTreeSet<usize> {
        assert!(from < self.arena.len(), "node id out of bounds");
        let mut seen = BTreeSet::from([from]);
        let mut queue = VecDeque::from([from]);
        while let Some(id) = queue.pop_front() {
            for &(_, to) in &self.edges[id] {
                if seen.insert(to) {
                    queue.push_back(to);
                }
            }
        }
        seen
    }

    /// The set of nodes from which some node satisfying `goal` is reachable.
    #[must_use]
    pub fn nodes_that_can_reach<F: FnMut(usize) -> bool>(&self, mut goal: F) -> BTreeSet<usize> {
        let preds = self.predecessor_lists();
        let mut seen: BTreeSet<usize> = self.ids().filter(|&id| goal(id)).collect();
        let mut queue: VecDeque<usize> = seen.iter().copied().collect();
        while let Some(id) = queue.pop_front() {
            for &p in &preds[id] {
                if seen.insert(p) {
                    queue.push_back(p);
                }
            }
        }
        seen
    }

    /// A shortest transition word from node `from` to some node satisfying
    /// `goal`, if one exists within the graph.
    ///
    /// # Panics
    ///
    /// Panics if `from` is out of bounds.
    #[must_use]
    pub fn path_to<F: FnMut(usize) -> bool>(
        &self,
        from: usize,
        mut goal: F,
    ) -> Option<(usize, Vec<usize>)> {
        assert!(from < self.arena.len(), "node id out of bounds");
        if goal(from) {
            return Some((from, Vec::new()));
        }
        let mut parents: BTreeMap<usize, (usize, usize)> = BTreeMap::new();
        let mut queue = VecDeque::from([from]);
        let mut seen = BTreeSet::from([from]);
        while let Some(id) = queue.pop_front() {
            for &(t, to) in &self.edges[id] {
                if seen.insert(to) {
                    parents.insert(to, (id, t));
                    if goal(to) {
                        // Reconstruct the word.
                        let mut word = Vec::new();
                        let mut cur = to;
                        while cur != from {
                            let (parent, transition) = parents[&cur];
                            word.push(transition);
                            cur = parent;
                        }
                        word.reverse();
                        return Some((to, word));
                    }
                    queue.push_back(to);
                }
            }
        }
        None
    }

    /// Strongly connected components of the graph, in reverse topological
    /// order (every edge leaving a component goes to an earlier component in
    /// the returned list). Uses an iterative Tarjan algorithm.
    #[must_use]
    pub fn sccs(&self) -> Vec<Vec<usize>> {
        let n = self.arena.len();
        let mut index = vec![usize::MAX; n];
        let mut low = vec![0usize; n];
        let mut on_stack = vec![false; n];
        let mut stack: Vec<usize> = Vec::new();
        let mut next_index = 0usize;
        let mut components: Vec<Vec<usize>> = Vec::new();

        #[derive(Debug)]
        struct Frame {
            node: usize,
            edge: usize,
        }

        for start in 0..n {
            if index[start] != usize::MAX {
                continue;
            }
            let mut call_stack = vec![Frame {
                node: start,
                edge: 0,
            }];
            index[start] = next_index;
            low[start] = next_index;
            next_index += 1;
            stack.push(start);
            on_stack[start] = true;

            while let Some(frame) = call_stack.last_mut() {
                let node = frame.node;
                if frame.edge < self.edges[node].len() {
                    let (_, to) = self.edges[node][frame.edge];
                    frame.edge += 1;
                    if index[to] == usize::MAX {
                        index[to] = next_index;
                        low[to] = next_index;
                        next_index += 1;
                        stack.push(to);
                        on_stack[to] = true;
                        call_stack.push(Frame { node: to, edge: 0 });
                    } else if on_stack[to] {
                        low[node] = low[node].min(index[to]);
                    }
                } else {
                    call_stack.pop();
                    if let Some(parent) = call_stack.last() {
                        low[parent.node] = low[parent.node].min(low[node]);
                    }
                    if low[node] == index[node] {
                        let mut component = Vec::new();
                        loop {
                            let v = stack.pop().expect("tarjan stack underflow");
                            on_stack[v] = false;
                            component.push(v);
                            if v == node {
                                break;
                            }
                        }
                        component.sort_unstable();
                        components.push(component);
                    }
                }
            }
        }
        components
    }

    /// The strongly connected component containing `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of bounds.
    #[must_use]
    pub fn scc_of(&self, id: usize) -> Vec<usize> {
        assert!(id < self.arena.len(), "node id out of bounds");
        self.sccs()
            .into_iter()
            .find(|c| c.contains(&id))
            .expect("every node belongs to a component")
    }
}

/// Reference sparse exploration: the pre-engine `BTreeMap`-based breadth
/// first search, kept as the differential-testing and benchmarking baseline
/// for the dense engine path of [`ReachabilityGraph::build`].
///
/// Returns the set of reached configurations and whether the exploration
/// completed without hitting a limit. Semantics match
/// [`ReachabilityGraph::build`] exactly; the property tests in
/// `tests/dense_sparse_equivalence.rs` assert that node sets and
/// completeness flags agree on the protocol catalog.
#[must_use]
pub fn sparse_reference_exploration<P, I>(
    net: &PetriNet<P>,
    initial: I,
    limits: &ExplorationLimits,
) -> (BTreeSet<Multiset<P>>, bool)
where
    P: Clone + Ord,
    I: IntoIterator<Item = Multiset<P>>,
{
    let mut index: BTreeMap<Multiset<P>, usize> = BTreeMap::new();
    let mut configs: Vec<Multiset<P>> = Vec::new();
    let mut complete = true;
    let mut queue: VecDeque<(usize, usize)> = VecDeque::new();

    let intern = |config: Multiset<P>,
                  index: &mut BTreeMap<Multiset<P>, usize>,
                  configs: &mut Vec<Multiset<P>>|
     -> Option<usize> {
        if let Some(&id) = index.get(&config) {
            return Some(id);
        }
        if configs.len() >= limits.max_configurations {
            return None;
        }
        let id = configs.len();
        index.insert(config.clone(), id);
        configs.push(config);
        Some(id)
    };

    let mut initial_ids = Vec::new();
    for config in initial {
        match intern(config, &mut index, &mut configs) {
            Some(id) => {
                if !initial_ids.contains(&id) {
                    initial_ids.push(id);
                    queue.push_back((id, 0));
                }
            }
            None => complete = false,
        }
    }

    let mut expanded = vec![false; configs.len()];
    while let Some((id, depth)) = queue.pop_front() {
        if expanded.get(id).copied().unwrap_or(false) {
            continue;
        }
        if expanded.len() < configs.len() {
            expanded.resize(configs.len(), false);
        }
        expanded[id] = true;
        if let Some(max_depth) = limits.max_depth {
            if depth >= max_depth {
                complete = false;
                continue;
            }
        }
        if let Some(max_agents) = limits.max_agents {
            if configs[id].total() > max_agents {
                complete = false;
                continue;
            }
        }
        for (_, successor) in net.successors(&configs[id]) {
            match intern(successor, &mut index, &mut configs) {
                Some(succ_id) => {
                    if !expanded.get(succ_id).copied().unwrap_or(false) {
                        if expanded.len() < configs.len() {
                            expanded.resize(configs.len(), false);
                        }
                        queue.push_back((succ_id, depth + 1));
                    }
                }
                None => complete = false,
            }
        }
    }
    (configs.into_iter().collect(), complete)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::session::Analysis;
    use crate::Transition;

    fn ms(pairs: &[(&'static str, u64)]) -> Multiset<&'static str> {
        Multiset::from_pairs(pairs.iter().copied())
    }

    /// Net over {a, b}: a+a -> a+b (irreversible) and a+b <-> b+a (identity-ish b toggles).
    fn doubling_net() -> PetriNet<&'static str> {
        PetriNet::from_transitions([
            Transition::pairwise("a", "a", "a", "b"),
            Transition::pairwise("a", "b", "b", "b"),
        ])
    }

    /// One-shot sequential build through the session API — what the
    /// deprecated `ReachabilityGraph::build` shim forwards external
    /// callers to.
    fn build<I: IntoIterator<Item = Multiset<&'static str>>>(
        net: &PetriNet<&'static str>,
        initials: I,
        limits: &ExplorationLimits,
    ) -> ReachabilityGraph<&'static str> {
        build_with(net, initials, limits, Parallelism::Sequential)
    }

    /// One-shot build through the session API at a chosen parallelism.
    /// Cloned out of the session's `Arc` because several tests resume
    /// or mutate the graph in place.
    fn build_with<I: IntoIterator<Item = Multiset<&'static str>>>(
        net: &PetriNet<&'static str>,
        initials: I,
        limits: &ExplorationLimits,
        parallelism: Parallelism,
    ) -> ReachabilityGraph<&'static str> {
        Analysis::new(net)
            .reachability(initials)
            .limits(*limits)
            .parallelism(parallelism)
            .run()
            .as_ref()
            .clone()
    }

    #[test]
    fn conservative_graph_is_complete() {
        let net = doubling_net();
        let graph = build(&net, [ms(&[("a", 5)])], &ExplorationLimits::default());
        assert!(graph.is_complete());
        // Reachable: 5a, 4a+b, 3a+2b, 2a+3b, a+4b, 5b — a can always convert.
        assert_eq!(graph.len(), 6);
        assert_eq!(graph.initial_ids().len(), 1);
        assert!(graph.id_of(&ms(&[("b", 5)])).is_some());
        assert!(graph.id_of(&ms(&[("a", 5), ("b", 1)])).is_none());
    }

    #[test]
    fn budget_truncation_is_reported() {
        let net = doubling_net();
        let limits = ExplorationLimits::with_max_configurations(2);
        let graph = build(&net, [ms(&[("a", 5)])], &limits);
        assert!(!graph.is_complete());
        assert!(graph.len() <= 2);
    }

    #[test]
    fn budget_truncation_is_graceful_on_both_engines() {
        // Tiny synthetic caps: the budget must be enforced before the
        // arena's id-space panic path, on the sequential and the pipelined
        // parallel engine alike, and the truncated graphs must agree.
        let net = doubling_net();
        for cap in [1usize, 2, 3, 5] {
            let limits = ExplorationLimits::with_max_configurations(cap);
            let sequential = build(&net, [ms(&[("a", 6)])], &limits);
            assert!(!sequential.is_complete());
            assert!(sequential.len() <= cap);
            for workers in [1usize, 2, 4] {
                let parallel = build_with(
                    &net,
                    [ms(&[("a", 6)])],
                    &limits,
                    Parallelism::Parallel(workers),
                );
                assert!(
                    sequential.identical_to(&parallel),
                    "truncated graphs diverge at cap {cap} workers {workers}"
                );
            }
        }
    }

    #[test]
    fn oversized_budget_is_clamped_to_the_arena_id_space() {
        // A budget beyond the arena's u32 id space must degrade into a
        // truncated build, never an id-overflow panic.
        let limits = ExplorationLimits::with_max_configurations(usize::MAX);
        assert_eq!(
            limits.effective_max_configurations(),
            MAX_GRAPH_CONFIGURATIONS
        );
        let exact = ExplorationLimits::with_max_configurations(MAX_GRAPH_CONFIGURATIONS);
        assert_eq!(
            exact.effective_max_configurations(),
            MAX_GRAPH_CONFIGURATIONS
        );
        // Sanity: a small build under the clamped budget still completes.
        let net = doubling_net();
        let graph = build(&net, [ms(&[("a", 4)])], &limits);
        assert!(graph.is_complete());
    }

    #[test]
    fn agent_budget_truncation_matches_across_engines() {
        // Non-conservative net: a -> a + a grows without bound; the agent
        // cap stops expansion. Sequential and pipelined builds must agree
        // node for node, including the incompleteness flag.
        let net = PetriNet::from_transitions([Transition::new(ms(&[("a", 1)]), ms(&[("a", 2)]))]);
        let limits = ExplorationLimits::with_max_agents(6);
        let sequential = build(&net, [ms(&[("a", 1)])], &limits);
        assert!(!sequential.is_complete());
        for workers in [1usize, 3] {
            let parallel = build_with(
                &net,
                [ms(&[("a", 1)])],
                &limits,
                Parallelism::Parallel(workers),
            );
            assert!(sequential.identical_to(&parallel));
        }
    }

    #[test]
    fn agent_budget_stops_expansion_of_large_configs() {
        // Non-conservative net: a -> a + a grows without bound.
        let net = PetriNet::from_transitions([Transition::new(ms(&[("a", 1)]), ms(&[("a", 2)]))]);
        let limits = ExplorationLimits::with_max_agents(4);
        let graph = build(&net, [ms(&[("a", 1)])], &limits);
        assert!(!graph.is_complete());
        // 1, 2, 3, 4 agents are expanded; 5 is stored but not expanded.
        assert_eq!(graph.len(), 5);
    }

    #[test]
    fn depth_budget() {
        let net = doubling_net();
        let limits = ExplorationLimits {
            max_depth: Some(1),
            ..Default::default()
        };
        let graph = build(&net, [ms(&[("a", 5)])], &limits);
        assert!(!graph.is_complete());
        assert_eq!(graph.len(), 2);
    }

    #[test]
    fn path_search_finds_shortest_word() {
        let net = doubling_net();
        let graph = build(&net, [ms(&[("a", 4)])], &ExplorationLimits::default());
        let start = graph.initial_ids()[0];
        let target = ms(&[("b", 4)]);
        let (goal, word) = graph
            .path_to(start, |id| graph.node(id) == &target)
            .expect("4b is reachable");
        assert_eq!(graph.node(goal), &target);
        assert_eq!(word.len(), 4);
        assert_eq!(net.fire_word(&ms(&[("a", 4)]), &word), Some(target));
        assert!(graph
            .path_to(start, |id| graph.node(id).get(&"z") > 0)
            .is_none());
    }

    #[test]
    fn reachable_and_coreachable_sets() {
        let net = doubling_net();
        let graph = build(&net, [ms(&[("a", 3)])], &ExplorationLimits::default());
        let start = graph.initial_ids()[0];
        let all = graph.reachable_from(start);
        assert_eq!(all.len(), graph.len());
        let sink = graph.id_of(&ms(&[("b", 3)])).unwrap();
        assert_eq!(graph.reachable_from(sink), BTreeSet::from([sink]));
        let can_reach_sink = graph.nodes_that_can_reach(|id| id == sink);
        assert_eq!(can_reach_sink.len(), graph.len());
    }

    #[test]
    fn sccs_of_a_dag_are_singletons() {
        let net = doubling_net();
        let graph = build(&net, [ms(&[("a", 3)])], &ExplorationLimits::default());
        let sccs = graph.sccs();
        assert_eq!(sccs.len(), graph.len());
        assert!(sccs.iter().all(|c| c.len() == 1));
    }

    #[test]
    fn sccs_detect_cycles() {
        // a <-> b reversible plus an escape to c.
        let net = PetriNet::from_transitions([
            Transition::new(ms(&[("a", 1)]), ms(&[("b", 1)])),
            Transition::new(ms(&[("b", 1)]), ms(&[("a", 1)])),
            Transition::new(ms(&[("a", 2)]), ms(&[("c", 2)])),
        ]);
        let graph = build(&net, [ms(&[("a", 2)])], &ExplorationLimits::default());
        let sccs = graph.sccs();
        // {2a, a+b, 2b} form one component; 2c is its own.
        let sizes: Vec<usize> = sccs.iter().map(Vec::len).collect();
        assert!(sizes.contains(&3));
        assert!(sizes.contains(&1));
        let start = graph.initial_ids()[0];
        assert_eq!(graph.scc_of(start).len(), 3);
        // Reverse topological order: the first component has no outgoing edges.
        let first = &sccs[0];
        for &id in first {
            for &(_, to) in graph.successors(id) {
                assert!(first.contains(&to));
            }
        }
    }

    #[test]
    fn resume_extends_truncated_graphs_bit_identically() {
        let net = doubling_net();
        let start = [ms(&[("a", 6)])];
        for (small, large) in [(1usize, 2), (1, 7), (2, 4), (3, 250_000)] {
            let small_limits = ExplorationLimits::with_max_configurations(small);
            let large_limits = ExplorationLimits::with_max_configurations(large);
            let mut resumed = build(&net, start.clone(), &small_limits);
            resumed.resume(&large_limits);
            let cold = build(&net, start.clone(), &large_limits);
            assert!(resumed.identical_to(&cold), "cap {small} -> {large}");
            assert_eq!(resumed.limits(), &large_limits);
        }
    }

    #[test]
    fn resume_chains_compose() {
        // B -> B' -> B'' must equal a cold build at B'' at every stop.
        let net = doubling_net();
        let start = [ms(&[("a", 7)])];
        let mut resumed = build(
            &net,
            start.clone(),
            &ExplorationLimits::with_max_configurations(1),
        );
        for budget in [2usize, 3, 5, 100] {
            let limits = ExplorationLimits::with_max_configurations(budget);
            resumed.resume(&limits);
            let cold = build(&net, start.clone(), &limits);
            assert!(resumed.identical_to(&cold), "chained resume to {budget}");
        }
        assert!(resumed.is_complete());
    }

    #[test]
    fn resume_through_agent_and_depth_caps() {
        // Non-conservative growth capped by agents, then the cap raised;
        // and a depth-capped graph deepened. Both must replay bit-identically.
        let net = PetriNet::from_transitions([Transition::new(ms(&[("a", 1)]), ms(&[("a", 2)]))]);
        let mut resumed = build(
            &net,
            [ms(&[("a", 1)])],
            &ExplorationLimits::with_max_agents(3),
        );
        assert_eq!(resumed.completion(), Completion::AgentCap);
        resumed.resume(&ExplorationLimits::with_max_agents(9));
        let cold = build(
            &net,
            [ms(&[("a", 1)])],
            &ExplorationLimits::with_max_agents(9),
        );
        assert!(resumed.identical_to(&cold));

        let net = doubling_net();
        let depth = |d: usize| ExplorationLimits {
            max_depth: Some(d),
            ..Default::default()
        };
        let mut resumed = build(&net, [ms(&[("a", 6)])], &depth(1));
        assert_eq!(resumed.completion(), Completion::DepthCap);
        for d in [2usize, 3, 50] {
            resumed.resume(&depth(d));
            let cold = build(&net, [ms(&[("a", 6)])], &depth(d));
            assert!(resumed.identical_to(&cold), "depth {d}");
        }
        // Lifting the depth cap entirely completes the graph.
        resumed.resume(&ExplorationLimits::default());
        assert!(resumed.is_complete());
    }

    #[test]
    fn resume_interns_pending_initials_in_cold_order() {
        // Budget 1 refuses two of the three initials; the resumed graph
        // must intern them exactly where a cold build numbers them.
        let net = doubling_net();
        let initials = [ms(&[("a", 2)]), ms(&[("b", 2)]), ms(&[("a", 1), ("b", 1)])];
        let mut resumed = build(
            &net,
            initials.clone(),
            &ExplorationLimits::with_max_configurations(1),
        );
        assert_eq!(resumed.initial_ids().len(), 1);
        resumed.resume(&ExplorationLimits::default());
        let cold = build(&net, initials, &ExplorationLimits::default());
        assert!(resumed.identical_to(&cold));
        assert_eq!(resumed.initial_ids().len(), 3);
        assert!(resumed.is_complete());
    }

    #[test]
    fn resume_on_a_complete_graph_is_a_no_op() {
        let net = doubling_net();
        let cold = build(&net, [ms(&[("a", 5)])], &ExplorationLimits::default());
        let mut resumed = cold.clone();
        resumed.resume(&ExplorationLimits::with_max_configurations(usize::MAX));
        assert_eq!(resumed.len(), cold.len());
        assert!(resumed.is_complete());
    }

    #[test]
    #[should_panic(expected = "dominate")]
    fn resume_rejects_lowered_limits() {
        let net = doubling_net();
        let mut graph = build(&net, [ms(&[("a", 5)])], &ExplorationLimits::default());
        graph.resume(&ExplorationLimits::with_max_configurations(1));
    }

    #[test]
    fn limit_dominance_is_pointwise() {
        let base = ExplorationLimits {
            max_configurations: 100,
            max_agents: Some(10),
            max_depth: Some(5),
        };
        assert!(base.dominates(&base));
        let unlimited = ExplorationLimits {
            max_configurations: 100,
            max_agents: None,
            max_depth: None,
        };
        assert!(unlimited.dominates(&base));
        assert!(!base.dominates(&unlimited));
        let smaller = ExplorationLimits {
            max_configurations: 99,
            ..base
        };
        assert!(base.dominates(&smaller));
        assert!(!smaller.dominates(&base));
    }

    #[test]
    fn completion_reports_the_dominant_reason() {
        let net = doubling_net();
        let graph = build(&net, [ms(&[("a", 5)])], &ExplorationLimits::default());
        assert_eq!(graph.completion(), Completion::Complete);
        let capped = build(
            &net,
            [ms(&[("a", 5)])],
            &ExplorationLimits::with_max_configurations(2),
        );
        assert_eq!(capped.completion(), Completion::ConfigBudget);
        // A budget beyond the arena id space reports the id space, not the
        // caller's number.
        let net = PetriNet::from_transitions([Transition::new(ms(&[("a", 1)]), ms(&[("a", 2)]))]);
        let limits = ExplorationLimits {
            max_configurations: usize::MAX,
            max_agents: Some(4),
            max_depth: None,
        };
        let graph = build(&net, [ms(&[("a", 1)])], &limits);
        assert_eq!(graph.completion(), Completion::AgentCap);
        assert!(!graph.is_complete());
    }

    #[test]
    fn depths_follow_bfs_levels() {
        let net = doubling_net();
        let graph = build(&net, [ms(&[("a", 4)])], &ExplorationLimits::default());
        assert_eq!(graph.depth_of(graph.initial_ids()[0]), 0);
        for id in graph.ids() {
            for &(_, to) in graph.successors(id) {
                assert!(graph.depth_of(to) <= graph.depth_of(id) + 1);
            }
        }
    }

    #[test]
    fn multiple_initial_configurations() {
        let net = doubling_net();
        let graph = build(
            &net,
            [ms(&[("a", 2)]), ms(&[("b", 2)])],
            &ExplorationLimits::default(),
        );
        assert_eq!(graph.initial_ids().len(), 2);
        assert!(graph.id_of(&ms(&[("b", 2)])).is_some());
        assert!(graph.id_of(&ms(&[("a", 1), ("b", 1)])).is_some());
    }

    /// The deprecated one-shot constructors stay for external callers
    /// only; this is the one place that still calls them, pinning that
    /// they forward to the session path bit-identically.
    #[test]
    #[allow(deprecated)]
    fn deprecated_one_shot_shims_forward_to_the_session_path() {
        let net = doubling_net();
        let limits = ExplorationLimits::with_max_configurations(3);
        let start = [ms(&[("a", 5)])];
        // pp-lint: allow(deprecated-internal) — the shim's forwarding is itself under test
        let shim = ReachabilityGraph::build(&net, start.clone(), &limits);
        assert!(shim.identical_to(&build(&net, start.clone(), &limits)));
        let par = Parallelism::Parallel(2);
        // pp-lint: allow(deprecated-internal) — the shim's forwarding is itself under test
        let shim = ReachabilityGraph::build_with(&net, start.clone(), &limits, par);
        assert!(shim.identical_to(&build_with(&net, start, &limits, par)));
    }
}
