//! Multicycle shrinking (Lemma 7.3): small multicycles with prescribed signs.
//!
//! Lemma 7.3 takes a (possibly huge) multicycle `Θ` of a Petri net with
//! control-states and produces a *small* multicycle `Θ'` whose displacement
//! has the same signs as `Δ(Θ)` (strictly so on places where `Δ(Θ)` is at
//! least `k` in absolute value), vanishes on a prescribed set of places, and
//! passes through every edge that `Θ` uses at least `k` times. The proof goes
//! through Pottier's theorem on the linear system (1); this module implements
//! that construction executably on top of [`pp_diophantine`].

use crate::control::ControlNet;
use crate::euler::decompose_into_simple_cycles;
use pp_bigint::Nat;
use pp_diophantine::{decompose, HilbertConfig, LinearSystem};
use pp_multiset::SignedVec;
use std::collections::BTreeSet;
use std::fmt;

/// Failure modes of [`shrink_multicycle`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ShrinkError {
    /// The given Parikh image is not flow-balanced (it is not a multicycle).
    NotAMulticycle,
    /// The Hilbert-basis computation exceeded its budget.
    HilbertBudget(pp_diophantine::HilbertError),
    /// The Parikh image could not be decomposed over the Hilbert basis
    /// (should not happen for genuine multicycles).
    DecompositionFailed,
    /// No basis element vanishing on the prescribed places covers the given
    /// edge — the threshold `k` was too small for the lemma to apply.
    EdgeNotCoverable(usize),
    /// No basis element vanishing on the prescribed places has a positive
    /// value on the given place index — the threshold `k` was too small.
    PlaceNotCoverable(usize),
}

impl fmt::Display for ShrinkError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ShrinkError::NotAMulticycle => write!(f, "parikh image is not flow-balanced"),
            ShrinkError::HilbertBudget(e) => write!(f, "hilbert basis budget exceeded: {e}"),
            ShrinkError::DecompositionFailed => {
                write!(
                    f,
                    "multicycle could not be decomposed over the hilbert basis"
                )
            }
            ShrinkError::EdgeNotCoverable(e) => {
                write!(f, "no zero-restricted basis element covers edge {e}")
            }
            ShrinkError::PlaceNotCoverable(p) => {
                write!(f, "no zero-restricted basis element covers place index {p}")
            }
        }
    }
}

impl std::error::Error for ShrinkError {}

/// The result of shrinking a multicycle (Lemma 7.3).
#[derive(Debug, Clone)]
pub struct ShrunkMulticycle<P: Ord> {
    /// The distinct simple cycles available (edge sequences), taken from the
    /// decomposition of the original multicycle.
    pub simple_cycles: Vec<Vec<usize>>,
    /// Multiplicity of each simple cycle in the shrunk multicycle `Θ'`.
    pub multiplicities: Vec<u64>,
    /// Edge Parikh image of `Θ'`.
    pub parikh: Vec<u64>,
    /// Displacement `Δ(Θ')` (over the full, unrestricted places).
    pub displacement: SignedVec<P>,
    /// Displacement `Δ(Θ)` of the original multicycle.
    pub original_displacement: SignedVec<P>,
    /// Total number of simple cycles in `Θ'` (the `‖β'‖₁` of the proof).
    pub cycle_count: u64,
    /// Total number of edges of `Θ'` (sum of the lengths of its cycles).
    pub edge_length: u64,
}

impl<P: Clone + Ord> ShrunkMulticycle<P> {
    /// Checks the sign-preservation guarantees of Lemma 7.3 for threshold `k`.
    #[must_use]
    pub fn signs_preserved(&self, k: u64) -> bool {
        let places: BTreeSet<P> = self
            .original_displacement
            .support_set()
            .union(&self.displacement.support_set())
            .cloned()
            .collect();
        for p in &places {
            let original = self.original_displacement.get(p);
            let new = self.displacement.get(p);
            if original <= 0 && new > 0 {
                return false;
            }
            if original >= 0 && new < 0 {
                return false;
            }
            if original <= -(k as i64) && new >= 0 {
                return false;
            }
            if original >= k as i64 && new <= 0 {
                return false;
            }
        }
        true
    }

    /// Checks that `Θ'` vanishes on every place of `zero_places`.
    #[must_use]
    pub fn vanishes_on(&self, zero_places: &BTreeSet<P>) -> bool {
        zero_places.iter().all(|p| self.displacement.get(p) == 0)
    }

    /// Checks the edge-coverage guarantee: every edge used at least `k` times
    /// by the original multicycle is used by `Θ'`.
    #[must_use]
    pub fn covers_frequent_edges(&self, original_parikh: &[u64], k: u64) -> bool {
        original_parikh
            .iter()
            .zip(&self.parikh)
            .all(|(&orig, &new)| orig < k || new > 0)
    }
}

/// The threshold above which Lemma 7.3 applies:
/// `k > ‖Δ(Θ)|_Q‖₁ · (1 + 2|S|·‖T‖∞)^d · (d + 1)`.
#[must_use]
pub fn lemma_7_3_threshold<P: Clone + Ord>(control: &ControlNet<P>, restricted_l1: u64) -> Nat {
    let d = control.net().num_places() as u64;
    let s = control.num_control_states() as u64;
    let base = Nat::from(1 + 2 * s * control.net().sup_norm());
    Nat::from(restricted_l1) * base.pow(d) * Nat::from(d + 1)
}

/// The Lemma 7.3 bound on the size of the shrunk multicycle:
/// `|Θ'| ≤ (|E| + d)·(1 + 2|S|·‖T‖∞)^d·(d + 1)`.
#[must_use]
pub fn lemma_7_3_size_bound<P: Clone + Ord>(control: &ControlNet<P>) -> Nat {
    let d = control.net().num_places() as u64;
    let s = control.num_control_states() as u64;
    let e = control.num_edges() as u64;
    let base = Nat::from(1 + 2 * s * control.net().sup_norm());
    Nat::from(e + d) * base.pow(d) * Nat::from(d + 1)
}

/// Shrinks the multicycle with edge Parikh image `theta_parikh` following the
/// construction of Lemma 7.3.
///
/// `zero_places` is the set of places on which the displacement of the result
/// must vanish (the set `Q` — in Section 8, the small-valued places `R'`), and
/// `k` is the threshold: the result's displacement is strictly negative
/// (positive) wherever `Δ(Θ)` is below `-k` (at least `k`), and the result
/// passes through every edge used at least `k` times by `Θ`.
///
/// # Errors
///
/// Returns a [`ShrinkError`] when the Parikh image is not a multicycle, the
/// Hilbert computation blows its budget, or `k` is too small for the lemma's
/// covering argument to go through on this instance.
pub fn shrink_multicycle<P: Clone + Ord>(
    control: &ControlNet<P>,
    theta_parikh: &[u64],
    zero_places: &BTreeSet<P>,
    k: u64,
    hilbert: &HilbertConfig,
) -> Result<ShrunkMulticycle<P>, ShrinkError> {
    // 1. Decompose Θ into simple cycles.
    let cycles_multiset =
        decompose_into_simple_cycles(control, theta_parikh).ok_or(ShrinkError::NotAMulticycle)?;
    // Deduplicate simple cycles by their Parikh image, remembering counts.
    let mut simple_cycles: Vec<Vec<usize>> = Vec::new();
    let mut counts: Vec<u64> = Vec::new();
    for cycle in cycles_multiset {
        let parikh = control.parikh(&cycle);
        match simple_cycles
            .iter()
            .position(|c| control.parikh(c) == parikh)
        {
            Some(i) => counts[i] += 1,
            None => {
                simple_cycles.push(cycle);
                counts.push(1);
            }
        }
    }

    // 2. Signs and absolute displacement of Θ.
    let places: Vec<P> = control.net().places().iter().cloned().collect();
    let theta_displacement = control.displacement_of_parikh(theta_parikh);
    let sign = |p: &P| -> i64 {
        if theta_displacement.get(p) >= 0 {
            1
        } else {
            -1
        }
    };

    // 3. Linear system (1): for each place p,
    //    s(p)·α(p) − Σ_c β(c)·Δ(c)(p) = 0,
    //    over variables (α ∈ N^places, β ∈ N^cycles).
    let cycle_displacements: Vec<SignedVec<P>> = simple_cycles
        .iter()
        .map(|c| control.displacement(c))
        .collect();
    let mut rows = Vec::with_capacity(places.len());
    for (p_index, p) in places.iter().enumerate() {
        let mut row = vec![0i64; places.len() + simple_cycles.len()];
        row[p_index] = sign(p);
        for (c_index, delta) in cycle_displacements.iter().enumerate() {
            row[places.len() + c_index] = -delta.get(p);
        }
        rows.push(row);
    }
    let system = LinearSystem::from_rows(rows).expect("system has at least one place row");

    // 4. Hilbert basis and decomposition of (f, g).
    let basis = system
        .hilbert_basis(hilbert)
        .map_err(ShrinkError::HilbertBudget)?;
    let mut fg = vec![0u64; places.len() + simple_cycles.len()];
    for (p_index, p) in places.iter().enumerate() {
        fg[p_index] = theta_displacement.get(p).unsigned_abs();
    }
    for (c_index, &count) in counts.iter().enumerate() {
        fg[places.len() + c_index] = count;
    }
    debug_assert!(system.is_solution(&fg), "(f, g) must solve the system");
    let multiplicities_over_basis =
        decompose(&fg, &basis).ok_or(ShrinkError::DecompositionFailed)?;

    // 5. H0: basis elements (used by the decomposition or not) whose α part
    //    vanishes on the zero places. The proof only needs elements of H, but
    //    any solution of the system with the vanishing property is usable, so
    //    searching the full basis only makes the construction more robust.
    let vanishes = |candidate: &[u64]| -> bool {
        places
            .iter()
            .enumerate()
            .all(|(p_index, p)| !zero_places.contains(p) || candidate[p_index] == 0)
    };
    let h0: Vec<&Vec<u64>> = basis.iter().filter(|b| vanishes(b)).collect();

    // 6. Cover frequent edges and large-displacement places using H0.
    let mut selected: Vec<u64> = vec![0u64; places.len() + simple_cycles.len()];
    let add_candidate = |selected: &mut Vec<u64>, candidate: &[u64]| {
        for (s, &c) in selected.iter_mut().zip(candidate) {
            *s += c;
        }
    };
    // Edge counts contributed by a candidate solution's β part.
    let edge_count = |candidate: &[u64], edge: usize| -> u64 {
        simple_cycles
            .iter()
            .enumerate()
            .map(|(c_index, cycle)| candidate[places.len() + c_index] * control.parikh(cycle)[edge])
            .sum()
    };
    for (edge, &edge_uses) in theta_parikh.iter().enumerate() {
        if edge_uses < k {
            continue;
        }
        let found = h0.iter().find(|b| edge_count(b, edge) > 0);
        match found {
            Some(b) => add_candidate(&mut selected, b),
            None => return Err(ShrinkError::EdgeNotCoverable(edge)),
        }
    }
    for (p_index, p) in places.iter().enumerate() {
        if theta_displacement.get(p).unsigned_abs() < k {
            continue;
        }
        let found = h0.iter().find(|b| b[p_index] > 0);
        match found {
            Some(b) => add_candidate(&mut selected, b),
            None => return Err(ShrinkError::PlaceNotCoverable(p_index)),
        }
    }
    // If nothing required covering (all counts below k), still return a valid
    // (possibly empty) multicycle.
    let _ = multiplicities_over_basis;

    // 7. Assemble Θ'.
    let multiplicities: Vec<u64> = (0..simple_cycles.len())
        .map(|c_index| selected[places.len() + c_index])
        .collect();
    let mut parikh = vec![0u64; control.num_edges()];
    let mut edge_length = 0u64;
    for (c_index, cycle) in simple_cycles.iter().enumerate() {
        let m = multiplicities[c_index];
        if m == 0 {
            continue;
        }
        edge_length += m * cycle.len() as u64;
        for &e in cycle {
            parikh[e] += m;
        }
    }
    let displacement = control.displacement_of_parikh(&parikh);
    Ok(ShrunkMulticycle {
        simple_cycles,
        multiplicities,
        parikh,
        displacement,
        original_displacement: theta_displacement,
        cycle_count: selected[places.len()..].iter().sum(),
        edge_length,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ExplorationLimits, PetriNet, Transition};
    use pp_multiset::Multiset;

    fn ms(pairs: &[(&'static str, u64)]) -> Multiset<&'static str> {
        Multiset::from_pairs(pairs.iter().copied())
    }

    /// A control net with one control place `s` cycling through two states and
    /// two "counter" places x and y outside the restriction: one loop
    /// increments x, the other decrements y (when possible) or increments y.
    fn counter_control() -> ControlNet<&'static str> {
        let net = PetriNet::from_transitions([
            // s0 -> s1 producing x
            Transition::new(ms(&[("s0", 1)]), ms(&[("s1", 1), ("x", 1)])),
            // s1 -> s0 producing y
            Transition::new(ms(&[("s1", 1)]), ms(&[("s0", 1), ("y", 1)])),
            // s1 -> s0 consuming y
            Transition::new(ms(&[("s1", 1), ("y", 1)]), ms(&[("s0", 1)])),
        ]);
        let q: BTreeSet<&str> = ["s0", "s1"].into_iter().collect();
        ControlNet::from_component(&net, &q, &ms(&[("s0", 1)]), &ExplorationLimits::default())
            .unwrap()
    }

    fn parikh_of_cycles(
        control: &ControlNet<&'static str>,
        cycles: &[(Vec<usize>, u64)],
    ) -> Vec<u64> {
        let mut parikh = vec![0u64; control.num_edges()];
        for (cycle, count) in cycles {
            for &e in cycle {
                parikh[e] += count;
            }
        }
        parikh
    }

    #[test]
    fn shrinking_a_large_multicycle_preserves_signs_and_coverage() {
        let control = counter_control();
        assert_eq!(control.num_control_states(), 2);
        assert_eq!(control.num_edges(), 3);
        // Identify edges by their transition index.
        let edge_by_transition = |t: usize| {
            control
                .edges()
                .iter()
                .position(|e| e.transition == t)
                .unwrap()
        };
        let e_x = edge_by_transition(0);
        let e_plus_y = edge_by_transition(1);
        let e_minus_y = edge_by_transition(2);
        // Θ: 50 copies of the x-producing/y-producing loop and 40 copies of the
        // x-producing/y-consuming loop: Δ(Θ) = 90·x + 10·y.
        let theta = parikh_of_cycles(
            &control,
            &[(vec![e_x, e_plus_y], 50), (vec![e_x, e_minus_y], 40)],
        );
        let zero: BTreeSet<&str> = BTreeSet::new();
        let k = 10;
        let shrunk =
            shrink_multicycle(&control, &theta, &zero, k, &HilbertConfig::default()).unwrap();
        assert!(shrunk.signs_preserved(k));
        assert!(shrunk.covers_frequent_edges(&theta, k));
        assert!(shrunk.vanishes_on(&zero));
        assert!(shrunk.displacement.get(&"x") > 0);
        assert!(shrunk.displacement.get(&"y") >= 0);
        // The shrunk multicycle is much smaller than the original.
        assert!(shrunk.edge_length < theta.iter().sum::<u64>());
        assert!(Nat::from(shrunk.cycle_count) <= lemma_7_3_size_bound(&control));
    }

    #[test]
    fn shrinking_can_force_a_place_to_zero() {
        let control = counter_control();
        let edge_by_transition = |t: usize| {
            control
                .edges()
                .iter()
                .position(|e| e.transition == t)
                .unwrap()
        };
        let e_x = edge_by_transition(0);
        let e_plus_y = edge_by_transition(1);
        let e_minus_y = edge_by_transition(2);
        // Balanced in y: 30 of each loop; Δ(Θ) = 60·x + 0·y.
        let theta = parikh_of_cycles(
            &control,
            &[(vec![e_x, e_plus_y], 30), (vec![e_x, e_minus_y], 30)],
        );
        let zero: BTreeSet<&str> = ["y"].into_iter().collect();
        let shrunk =
            shrink_multicycle(&control, &theta, &zero, 20, &HilbertConfig::default()).unwrap();
        assert!(shrunk.vanishes_on(&zero));
        assert_eq!(shrunk.displacement.get(&"y"), 0);
        assert!(shrunk.displacement.get(&"x") > 0);
        assert!(shrunk.signs_preserved(20));
        assert!(shrunk.covers_frequent_edges(&theta, 20));
    }

    #[test]
    fn unbalanced_parikh_is_rejected() {
        let control = counter_control();
        let mut parikh = vec![0u64; control.num_edges()];
        parikh[0] = 1;
        let err = shrink_multicycle(
            &control,
            &parikh,
            &BTreeSet::new(),
            1,
            &HilbertConfig::default(),
        )
        .unwrap_err();
        assert_eq!(err, ShrinkError::NotAMulticycle);
        assert!(err.to_string().contains("flow-balanced"));
    }

    #[test]
    fn impossible_zero_constraint_reports_uncoverable() {
        let control = counter_control();
        let edge_by_transition = |t: usize| {
            control
                .edges()
                .iter()
                .position(|e| e.transition == t)
                .unwrap()
        };
        let e_x = edge_by_transition(0);
        let e_plus_y = edge_by_transition(1);
        // Every cycle of this net produces x, so requiring Δ(Θ')(x) = 0 while
        // covering the frequent edges is impossible.
        let theta = parikh_of_cycles(&control, &[(vec![e_x, e_plus_y], 30)]);
        let zero: BTreeSet<&str> = ["x"].into_iter().collect();
        let err =
            shrink_multicycle(&control, &theta, &zero, 5, &HilbertConfig::default()).unwrap_err();
        assert!(matches!(
            err,
            ShrinkError::EdgeNotCoverable(_) | ShrinkError::PlaceNotCoverable(_)
        ));
    }

    #[test]
    fn thresholds_and_bounds_are_positive() {
        let control = counter_control();
        assert!(lemma_7_3_threshold(&control, 3) > Nat::zero());
        assert!(lemma_7_3_size_bound(&control) > Nat::zero());
        assert!(lemma_7_3_threshold(&control, 0).is_zero());
    }
}
