//! Dense configurations and a precompiled transition table.

use pp_multiset::Multiset;
use pp_population::{Protocol, StateId};

/// A configuration stored as one counter per protocol state.
///
/// The dense layout avoids the allocation and tree walks of the sparse
/// [`Multiset`] during simulation; experiment E12's ablation bench compares
/// the two representations.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct DenseConfig {
    counts: Vec<u64>,
    total: u64,
}

impl DenseConfig {
    /// Builds a dense configuration from a sparse one.
    #[must_use]
    pub fn from_multiset(num_states: usize, config: &Multiset<StateId>) -> Self {
        let mut counts = vec![0u64; num_states];
        for (state, count) in config.iter() {
            counts[state.0] += count;
        }
        DenseConfig {
            total: counts.iter().sum(),
            counts,
        }
    }

    /// Converts back to a sparse configuration.
    #[must_use]
    pub fn to_multiset(&self) -> Multiset<StateId> {
        Multiset::from_pairs(
            self.counts
                .iter()
                .enumerate()
                .filter(|(_, &c)| c > 0)
                .map(|(s, &c)| (StateId(s), c)),
        )
    }

    /// Count of agents in `state`.
    #[must_use]
    pub fn get(&self, state: StateId) -> u64 {
        self.counts[state.0]
    }

    /// Total number of agents.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.total
    }

    /// The per-state counters.
    #[must_use]
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }
}

/// One precompiled transition: sparse pre/post lists over dense state indices.
#[derive(Debug, Clone)]
pub struct DenseTransition {
    pre: Vec<(usize, u64)>,
    post: Vec<(usize, u64)>,
}

impl DenseTransition {
    /// Returns `true` if the transition is enabled in `config`.
    #[must_use]
    pub fn is_enabled(&self, config: &DenseConfig) -> bool {
        self.pre.iter().all(|&(s, c)| config.counts[s] >= c)
    }

    /// Number of distinct unordered agent tuples able to play this transition
    /// in `config` (the product of binomial coefficients over its
    /// precondition), used by the instance-weighted scheduler.
    #[must_use]
    pub fn instances(&self, config: &DenseConfig) -> u128 {
        self.pre
            .iter()
            .map(|&(s, c)| binomial(config.counts[s], c))
            .product()
    }

    /// Fires the transition in place.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if the transition is not enabled.
    pub fn fire(&self, config: &mut DenseConfig) {
        for &(s, c) in &self.pre {
            debug_assert!(config.counts[s] >= c, "transition fired while disabled");
            config.counts[s] -= c;
            config.total -= c;
        }
        for &(s, c) in &self.post {
            config.counts[s] += c;
            config.total += c;
        }
    }
}

/// Binomial coefficient `C(n, k)` saturating in `u128`.
fn binomial(n: u64, k: u64) -> u128 {
    if k > n {
        return 0;
    }
    let k = k.min(n - k);
    let mut result: u128 = 1;
    for i in 0..k {
        result = result.saturating_mul(u128::from(n - i)) / u128::from(i + 1);
    }
    result
}

/// A protocol's Petri net precompiled for dense simulation.
#[derive(Debug, Clone)]
pub struct DenseNet {
    transitions: Vec<DenseTransition>,
    num_states: usize,
}

impl DenseNet {
    /// Compiles the protocol's transitions.
    #[must_use]
    pub fn compile(protocol: &Protocol) -> Self {
        let transitions = protocol
            .net()
            .transitions()
            .iter()
            .map(|t| DenseTransition {
                pre: t.pre().iter().map(|(s, c)| (s.0, c)).collect(),
                post: t.post().iter().map(|(s, c)| (s.0, c)).collect(),
            })
            .collect();
        DenseNet {
            transitions,
            num_states: protocol.num_states(),
        }
    }

    /// Number of protocol states.
    #[must_use]
    pub fn num_states(&self) -> usize {
        self.num_states
    }

    /// The precompiled transitions.
    #[must_use]
    pub fn transitions(&self) -> &[DenseTransition] {
        &self.transitions
    }

    /// Indices of the transitions enabled in `config`.
    #[must_use]
    pub fn enabled(&self, config: &DenseConfig) -> Vec<usize> {
        self.transitions
            .iter()
            .enumerate()
            .filter(|(_, t)| t.is_enabled(config))
            .map(|(i, _)| i)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pp_protocols::leaders_n::example_4_2;

    #[test]
    fn dense_round_trip_matches_sparse() {
        let protocol = example_4_2(2);
        let initial = protocol.initial_config_with_count(3);
        let dense = DenseConfig::from_multiset(protocol.num_states(), &initial);
        assert_eq!(dense.total(), 5);
        assert_eq!(dense.to_multiset(), initial);
        let i = protocol.state_id("i").unwrap();
        assert_eq!(dense.get(i), 3);
    }

    #[test]
    fn dense_firing_matches_sparse_firing() {
        let protocol = example_4_2(2);
        let net = DenseNet::compile(&protocol);
        assert_eq!(net.num_states(), 6);
        let initial = protocol.initial_config_with_count(3);
        let mut dense = DenseConfig::from_multiset(protocol.num_states(), &initial);
        let enabled = net.enabled(&dense);
        assert!(!enabled.is_empty());
        let t = enabled[0];
        net.transitions()[t].fire(&mut dense);
        let sparse_next = protocol.net().transition(t).fire(&initial).unwrap();
        assert_eq!(dense.to_multiset(), sparse_next);
        assert_eq!(dense.total(), 5);
    }

    #[test]
    fn binomial_values() {
        assert_eq!(binomial(5, 2), 10);
        assert_eq!(binomial(5, 0), 1);
        assert_eq!(binomial(3, 5), 0);
        assert_eq!(binomial(10, 10), 1);
    }

    #[test]
    fn instance_counts() {
        let protocol = example_4_2(2);
        let net = DenseNet::compile(&protocol);
        let initial = protocol.initial_config_with_count(3);
        let dense = DenseConfig::from_multiset(protocol.num_states(), &initial);
        // Transition t = (i + ī -> p + q) has 3·2 = 6 unordered instances.
        assert_eq!(net.transitions()[0].instances(&dense), 6);
    }

    #[test]
    fn enabled_set_matches_sparse_net() {
        let protocol = example_4_2(1);
        let net = DenseNet::compile(&protocol);
        let initial = protocol.initial_config_with_count(2);
        let dense = DenseConfig::from_multiset(protocol.num_states(), &initial);
        let sparse_enabled = protocol.net().enabled_transitions(&initial);
        assert_eq!(net.enabled(&dense), sparse_enabled);
    }
}
