//! Random-scheduler simulation of population protocols.
//!
//! Stable computation (Section 2 of the paper) is defined over all fair
//! executions; this crate complements the exact verification of
//! `pp-population` with *empirical* convergence measurements under the
//! classical uniform random scheduler: at every step a transition instance is
//! chosen uniformly at random among the enabled ones (for width-2 protocols
//! this coincides with the usual "pick an ordered pair of agents uniformly"
//! scheduler, conditioned on the pair interacting).
//!
//! The simulator runs on the shared dense state-space engine of
//! `pp-petri` ([`pp_petri::engine`]): protocols are compiled once with
//! [`compile_protocol`] and configurations are flat [`DenseConfig`]
//! counter vectors. Convergence is detected *exactly* (a configuration is
//! converged when it is output-stable for its consensus value, checked
//! with the coverability oracles of `pp-population`) and repeated trials
//! run on multiple threads ([`convergence`]).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod convergence;
pub mod scheduler;
pub mod simulation;
pub mod stats;

use pp_population::{Protocol, StateId};

pub use convergence::{ConvergenceExperiment, ConvergenceStats};
pub use pp_petri::engine::{CompiledNet, DenseConfig};
pub use scheduler::SchedulerKind;
pub use simulation::{RunOutcome, Simulation, StepOutcome};

/// A protocol's Petri net compiled for dense simulation.
///
/// Alias of the shared engine type specialized to protocol states; the
/// former `pp_sim::dense::DenseNet` duplicate was removed in favor of it.
pub type DenseNet = CompiledNet<StateId>;

/// Compiles a protocol onto the shared dense engine.
///
/// The place universe is widened to *all* protocol states (not only those
/// mentioned by transitions), so dense indices coincide with [`StateId`]
/// ordinals.
#[must_use]
pub fn compile_protocol(protocol: &Protocol) -> DenseNet {
    CompiledNet::compile_with_places(protocol.net(), protocol.states())
}

#[cfg(test)]
mod tests {
    use super::*;
    use pp_protocols::leaders_n::example_4_2;

    #[test]
    fn compiled_protocol_indices_match_state_ids() {
        let protocol = example_4_2(2);
        let net = compile_protocol(&protocol);
        assert_eq!(net.num_places(), protocol.num_states());
        for state in protocol.states() {
            assert_eq!(net.place_index(&state), Some(state.0));
        }
    }

    #[test]
    fn dense_round_trip_matches_sparse() {
        let protocol = example_4_2(2);
        let net = compile_protocol(&protocol);
        let initial = protocol.initial_config_with_count(3);
        let dense = net.dense_config(&initial);
        assert_eq!(dense.total(), 5);
        assert_eq!(net.to_multiset(&dense), initial);
        let i = protocol.state_id("i").unwrap();
        assert_eq!(dense.get(i.0), 3);
    }

    #[test]
    fn dense_firing_matches_sparse_firing() {
        let protocol = example_4_2(2);
        let net = compile_protocol(&protocol);
        assert_eq!(net.num_places(), 6);
        let initial = protocol.initial_config_with_count(3);
        let mut dense = net.dense_config(&initial);
        let enabled = net.enabled(&dense);
        assert_eq!(enabled, protocol.net().enabled_transitions(&initial));
        assert!(!enabled.is_empty());
        let t = enabled[0];
        net.transitions()[t].fire(&mut dense);
        let sparse_next = protocol.net().transition(t).fire(&initial).unwrap();
        assert_eq!(net.to_multiset(&dense), sparse_next);
        assert_eq!(dense.total(), 5);
    }

    #[test]
    fn instance_counts_on_protocol_transitions() {
        let protocol = example_4_2(2);
        let net = compile_protocol(&protocol);
        let initial = protocol.initial_config_with_count(3);
        let dense = net.dense_config(&initial);
        // Transition t = (i + ī -> p + q) has 3·2 = 6 unordered instances.
        assert_eq!(net.transitions()[0].instances(&dense), 6);
    }
}
