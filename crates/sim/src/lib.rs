//! Random-scheduler simulation of population protocols.
//!
//! Stable computation (Section 2 of the paper) is defined over all fair
//! executions; this crate complements the exact verification of
//! `pp-population` with *empirical* convergence measurements under the
//! classical uniform random scheduler: at every step a transition instance is
//! chosen uniformly at random among the enabled ones (for width-2 protocols
//! this coincides with the usual "pick an ordered pair of agents uniformly"
//! scheduler, conditioned on the pair interacting).
//!
//! The simulator works on a dense representation of configurations
//! ([`dense::DenseConfig`]) for speed, detects convergence *exactly* (a
//! configuration is converged when it is output-stable for its consensus
//! value, checked with the coverability oracles of `pp-population`) and runs
//! repeated trials on multiple threads ([`convergence`]).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod convergence;
pub mod dense;
pub mod scheduler;
pub mod simulation;
pub mod stats;

pub use convergence::{ConvergenceExperiment, ConvergenceStats};
pub use dense::{DenseConfig, DenseNet};
pub use scheduler::SchedulerKind;
pub use simulation::{RunOutcome, Simulation, StepOutcome};
