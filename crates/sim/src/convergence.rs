//! Multi-trial convergence-time experiments.

use crate::scheduler::SchedulerKind;
use crate::simulation::{RunOutcome, Simulation};
use crate::stats::Summary;
use pp_multiset::Multiset;
use pp_population::{Output, Protocol, StateId};

/// A convergence-time experiment: repeated simulations of one protocol from
/// one initial configuration, with statistics over the step counts.
///
/// Trials run on multiple OS threads (scoped, no unsafe, no shared mutable
/// state beyond the join handles); each trial uses an independent seed derived
/// from the experiment seed.
///
/// # Examples
///
/// ```
/// use pp_protocols::leaders_n::example_4_2;
/// use pp_sim::ConvergenceExperiment;
///
/// let protocol = example_4_2(2);
/// let stats = ConvergenceExperiment::new(&protocol, &protocol.initial_config_with_count(4))
///     .trials(8)
///     .max_steps(100_000)
///     .seed(7)
///     .run();
/// assert_eq!(stats.converged, 8);
/// ```
#[derive(Debug, Clone)]
pub struct ConvergenceExperiment<'p> {
    protocol: &'p Protocol,
    initial: Multiset<StateId>,
    trials: usize,
    max_steps: u64,
    seed: u64,
    scheduler: SchedulerKind,
    threads: usize,
}

/// The aggregated result of a convergence experiment.
#[derive(Debug, Clone)]
pub struct ConvergenceStats {
    /// Number of trials that converged within the step budget.
    pub converged: usize,
    /// Number of trials that exhausted the budget.
    pub exhausted: usize,
    /// Consensus value observed by the converged trials (if they agree).
    pub consensus: Option<Output>,
    /// Summary of the step counts of converged trials.
    pub steps: Option<Summary>,
    /// Number of agents in the initial configuration.
    pub agents: u64,
}

impl ConvergenceStats {
    /// Mean number of steps per agent ("parallel time") of converged trials.
    #[must_use]
    pub fn parallel_time(&self) -> Option<f64> {
        let steps = self.steps.as_ref()?;
        Some(steps.mean / self.agents.max(1) as f64)
    }
}

impl<'p> ConvergenceExperiment<'p> {
    /// Creates an experiment with default settings (16 trials, 10⁷ steps,
    /// seed 0, uniform scheduler, up to 8 threads).
    #[must_use]
    pub fn new(protocol: &'p Protocol, initial: &Multiset<StateId>) -> Self {
        ConvergenceExperiment {
            protocol,
            initial: initial.clone(),
            trials: 16,
            max_steps: 10_000_000,
            seed: 0,
            scheduler: SchedulerKind::default(),
            threads: 8,
        }
    }

    /// Sets the number of trials.
    #[must_use]
    pub fn trials(mut self, trials: usize) -> Self {
        self.trials = trials.max(1);
        self
    }

    /// Sets the per-trial step budget.
    #[must_use]
    pub fn max_steps(mut self, max_steps: u64) -> Self {
        self.max_steps = max_steps;
        self
    }

    /// Sets the base random seed.
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the scheduler used by every trial.
    #[must_use]
    pub fn scheduler(mut self, scheduler: SchedulerKind) -> Self {
        self.scheduler = scheduler;
        self
    }

    /// Sets the maximum number of worker threads.
    #[must_use]
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Runs all trials and aggregates the outcomes.
    #[must_use]
    pub fn run(&self) -> ConvergenceStats {
        let outcomes = self.run_trials();
        let mut steps = Vec::new();
        let mut consensus: Option<Output> = None;
        let mut consistent = true;
        let mut exhausted = 0usize;
        for outcome in &outcomes {
            match outcome {
                RunOutcome::Converged {
                    consensus: value,
                    steps: s,
                } => {
                    steps.push(*s);
                    match consensus {
                        None => consensus = Some(*value),
                        Some(existing) if existing == *value => {}
                        Some(_) => consistent = false,
                    }
                }
                RunOutcome::Exhausted { .. } => exhausted += 1,
            }
        }
        ConvergenceStats {
            converged: steps.len(),
            exhausted,
            consensus: if consistent { consensus } else { None },
            steps: Summary::of(&steps),
            agents: self.initial.total(),
        }
    }

    fn run_trials(&self) -> Vec<RunOutcome> {
        let per_thread = self.trials.div_ceil(self.threads.min(self.trials));
        let chunks: Vec<Vec<u64>> = (0..self.trials as u64)
            .collect::<Vec<_>>()
            .chunks(per_thread)
            .map(<[u64]>::to_vec)
            .collect();
        std::thread::scope(|scope| {
            let handles: Vec<_> = chunks
                .iter()
                .map(|trial_ids| {
                    scope.spawn(move || {
                        trial_ids
                            .iter()
                            .map(|&trial| {
                                let mut sim = Simulation::new(
                                    self.protocol,
                                    &self.initial,
                                    self.seed
                                        .wrapping_add(trial)
                                        .wrapping_mul(0x9E37_79B9_7F4A_7C15),
                                )
                                .with_scheduler(self.scheduler);
                                sim.run(self.max_steps)
                            })
                            .collect::<Vec<_>>()
                    })
                })
                .collect();
            handles
                .into_iter()
                .flat_map(|h| h.join().expect("simulation thread panicked"))
                .collect()
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pp_protocols::flock::flock_of_birds_doubling;
    use pp_protocols::leaders_n::example_4_2;

    #[test]
    fn all_trials_converge_and_agree_on_example_4_2() {
        let protocol = example_4_2(2);
        let initial = protocol.initial_config_with_count(6);
        let stats = ConvergenceExperiment::new(&protocol, &initial)
            .trials(6)
            .max_steps(1_000_000)
            .seed(3)
            .threads(3)
            .run();
        assert_eq!(stats.converged, 6);
        assert_eq!(stats.exhausted, 0);
        assert_eq!(stats.consensus, Some(Output::One));
        assert_eq!(stats.agents, 8);
        let summary = stats.steps.unwrap();
        assert!(summary.mean >= 1.0);
        assert!(summary.max >= summary.min);
    }

    #[test]
    fn rejecting_inputs_converge_to_zero() {
        let protocol = example_4_2(3);
        let initial = protocol.initial_config_with_count(1);
        let stats = ConvergenceExperiment::new(&protocol, &initial)
            .trials(4)
            .max_steps(1_000_000)
            .seed(11)
            .run();
        assert_eq!(stats.converged, 4);
        assert_eq!(stats.consensus, Some(Output::Zero));
        assert!(stats.parallel_time().unwrap() >= 0.0);
    }

    #[test]
    fn zero_step_budget_exhausts_nontrivial_runs() {
        let protocol = flock_of_birds_doubling(2);
        let initial = protocol.initial_config_with_count(5);
        let stats = ConvergenceExperiment::new(&protocol, &initial)
            .trials(3)
            .max_steps(0)
            .run();
        assert_eq!(stats.converged, 0);
        assert_eq!(stats.exhausted, 3);
        assert!(stats.steps.is_none());
        assert_eq!(stats.consensus, None);
    }

    #[test]
    fn deterministic_given_a_seed() {
        let protocol = example_4_2(2);
        let initial = protocol.initial_config_with_count(5);
        let run = |seed| {
            ConvergenceExperiment::new(&protocol, &initial)
                .trials(4)
                .seed(seed)
                .max_steps(1_000_000)
                .run()
                .steps
                .unwrap()
                .mean
        };
        assert_eq!(run(5), run(5));
    }
}
