//! A single protocol execution under a random scheduler.

use crate::scheduler::SchedulerKind;
use crate::{compile_protocol, DenseConfig, DenseNet};
use pp_multiset::Multiset;
use pp_petri::ExplorationLimits;
use pp_population::stable::ProtocolStability;
use pp_population::{Output, Protocol, StateId};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::HashMap;

/// The result of one simulation step.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StepOutcome {
    /// The scheduler fired the transition with this index.
    Fired(usize),
    /// No transition is enabled: the configuration is silent.
    Silent,
}

/// The outcome of running a simulation until convergence or a step budget.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RunOutcome {
    /// The execution reached a configuration that is output-stable for the
    /// given consensus value after the reported number of steps.
    Converged {
        /// Consensus output value of the stable configuration.
        consensus: Output,
        /// Number of scheduler steps taken.
        steps: u64,
    },
    /// The step budget was exhausted before convergence was detected.
    Exhausted {
        /// The step budget that was spent.
        steps: u64,
    },
}

impl RunOutcome {
    /// Steps taken by the run (whether or not it converged).
    #[must_use]
    pub fn steps(&self) -> u64 {
        match self {
            RunOutcome::Converged { steps, .. } | RunOutcome::Exhausted { steps } => *steps,
        }
    }

    /// Returns the consensus value if the run converged.
    #[must_use]
    pub fn consensus(&self) -> Option<Output> {
        match self {
            RunOutcome::Converged { consensus, .. } => Some(*consensus),
            RunOutcome::Exhausted { .. } => None,
        }
    }
}

/// A single execution of a protocol under a random scheduler.
///
/// Convergence is detected *exactly*: whenever the current configuration has
/// an output consensus, the simulator asks the protocol's stability oracle
/// whether the configuration is output-stable for that value (results are
/// memoized per configuration). This removes the usual guesswork of
/// "has it stopped changing?" heuristics.
///
/// # Examples
///
/// ```
/// use pp_protocols::leaders_n::example_4_2;
/// use pp_sim::Simulation;
///
/// let protocol = example_4_2(2);
/// let mut sim = Simulation::new(&protocol, &protocol.initial_config_with_count(5), 42);
/// let outcome = sim.run(100_000);
/// assert!(outcome.consensus().is_some());
/// ```
#[derive(Debug)]
pub struct Simulation<'p> {
    protocol: &'p Protocol,
    net: DenseNet,
    stability: ProtocolStability,
    scheduler: SchedulerKind,
    config: DenseConfig,
    rng: StdRng,
    steps: u64,
    stability_cache: HashMap<Multiset<StateId>, bool>,
}

impl<'p> Simulation<'p> {
    /// Creates a simulation of `protocol` from the configuration `initial`
    /// with the given random seed.
    #[must_use]
    pub fn new(protocol: &'p Protocol, initial: &Multiset<StateId>, seed: u64) -> Self {
        let net = compile_protocol(protocol);
        Simulation {
            config: net.dense_config(initial),
            net,
            stability: ProtocolStability::new(protocol),
            scheduler: SchedulerKind::default(),
            rng: StdRng::seed_from_u64(seed),
            steps: 0,
            stability_cache: HashMap::new(),
            protocol,
        }
    }

    /// Selects the scheduler (default: uniform over enabled transitions).
    pub fn with_scheduler(mut self, scheduler: SchedulerKind) -> Self {
        self.scheduler = scheduler;
        self
    }

    /// The current configuration (sparse view).
    #[must_use]
    pub fn config(&self) -> Multiset<StateId> {
        self.net.to_multiset(&self.config)
    }

    /// Number of steps taken so far.
    #[must_use]
    pub fn steps(&self) -> u64 {
        self.steps
    }

    /// Performs one scheduler step.
    pub fn step(&mut self) -> StepOutcome {
        match self
            .scheduler
            .choose(&self.net, &self.config, &mut self.rng)
        {
            Some(t) => {
                self.net.transitions()[t].fire(&mut self.config);
                self.steps += 1;
                StepOutcome::Fired(t)
            }
            None => StepOutcome::Silent,
        }
    }

    /// The consensus output of the current configuration, if all populated
    /// states agree (the empty configuration has consensus `0`).
    #[must_use]
    pub fn consensus(&self) -> Option<Output> {
        let mut value = None;
        for (state, &count) in self.config.counts().iter().enumerate() {
            if count == 0 {
                continue;
            }
            let output = self.protocol.output(StateId(state));
            match value {
                None => value = Some(output),
                Some(v) if v == output => {}
                Some(_) => return None,
            }
        }
        Some(value.unwrap_or(Output::Zero))
    }

    /// Returns `true` if the current configuration is output-stable for its
    /// consensus value (memoized exact check).
    pub fn is_converged(&mut self) -> Option<Output> {
        let consensus = self.consensus()?;
        let value = match consensus {
            Output::Zero => false,
            Output::One => true,
            Output::Star => return None,
        };
        let sparse = self.net.to_multiset(&self.config);
        let stable = match self.stability_cache.get(&sparse) {
            Some(&cached) => cached,
            None => {
                let result = self
                    .stability
                    .is_output_stable(self.protocol, &sparse, value, &ExplorationLimits::default())
                    .unwrap_or(false);
                self.stability_cache.insert(sparse, result);
                result
            }
        };
        stable.then_some(consensus)
    }

    /// Runs until convergence or until `max_steps` scheduler steps.
    ///
    /// Convergence is checked whenever the configuration is silent and
    /// otherwise every `n` steps (with `n` the number of agents), so the
    /// reported step count overestimates the true convergence time by at most
    /// one such window.
    pub fn run(&mut self, max_steps: u64) -> RunOutcome {
        let window = self.config.total().max(1);
        loop {
            if let Some(consensus) = self.is_converged() {
                return RunOutcome::Converged {
                    consensus,
                    steps: self.steps,
                };
            }
            if self.steps >= max_steps {
                return RunOutcome::Exhausted { steps: self.steps };
            }
            let mut fired_any = false;
            for _ in 0..window {
                match self.step() {
                    StepOutcome::Fired(_) => {
                        fired_any = true;
                        if self.steps >= max_steps {
                            break;
                        }
                    }
                    StepOutcome::Silent => break,
                }
            }
            if !fired_any {
                // Silent but not output-stable (e.g. a stuck mixed-output
                // configuration of an ill-specified protocol): report the
                // budget as exhausted rather than spinning forever.
                return RunOutcome::Exhausted { steps: self.steps };
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pp_protocols::flock::flock_of_birds_unary;
    use pp_protocols::leaders_n::example_4_2;
    use pp_protocols::majority::majority;

    #[test]
    fn example_4_2_converges_to_the_right_consensus() {
        let protocol = example_4_2(2);
        // 5 ≥ 2: must converge to consensus 1.
        let mut sim = Simulation::new(&protocol, &protocol.initial_config_with_count(5), 1);
        match sim.run(1_000_000) {
            RunOutcome::Converged { consensus, steps } => {
                assert_eq!(consensus, Output::One);
                assert!(steps > 0);
            }
            RunOutcome::Exhausted { .. } => panic!("simulation did not converge"),
        }
        // 1 < 2: must converge to consensus 0.
        let mut sim = Simulation::new(&protocol, &protocol.initial_config_with_count(1), 2);
        assert_eq!(sim.run(1_000_000).consensus(), Some(Output::Zero));
    }

    #[test]
    fn silent_initial_configuration_converges_immediately() {
        let protocol = example_4_2(3);
        // Only the three leaders: already 0-output stable.
        let mut sim = Simulation::new(&protocol, &protocol.initial_config_with_count(0), 3);
        let outcome = sim.run(10);
        assert_eq!(
            outcome,
            RunOutcome::Converged {
                consensus: Output::Zero,
                steps: 0
            }
        );
    }

    #[test]
    fn flock_of_birds_detects_threshold() {
        let protocol = flock_of_birds_unary(4);
        let mut sim = Simulation::new(&protocol, &protocol.initial_config_with_count(6), 11);
        assert_eq!(sim.run(1_000_000).consensus(), Some(Output::One));
        let mut sim = Simulation::new(&protocol, &protocol.initial_config_with_count(3), 12);
        assert_eq!(sim.run(1_000_000).consensus(), Some(Output::Zero));
    }

    #[test]
    fn majority_simulation_with_instance_weighted_scheduler() {
        let protocol = majority();
        let a = protocol.state_id("A").unwrap();
        let b = protocol.state_id("B").unwrap();
        let initial = Multiset::from_pairs([(a, 7u64), (b, 3)]);
        let mut sim =
            Simulation::new(&protocol, &initial, 5).with_scheduler(SchedulerKind::InstanceWeighted);
        assert_eq!(sim.run(1_000_000).consensus(), Some(Output::One));
        let initial = Multiset::from_pairs([(a, 3u64), (b, 7)]);
        let mut sim =
            Simulation::new(&protocol, &initial, 6).with_scheduler(SchedulerKind::InstanceWeighted);
        assert_eq!(sim.run(1_000_000).consensus(), Some(Output::Zero));
    }

    #[test]
    fn exhausted_budget_is_reported() {
        let protocol = example_4_2(2);
        let mut sim = Simulation::new(&protocol, &protocol.initial_config_with_count(6), 9);
        let outcome = sim.run(0);
        assert_eq!(outcome, RunOutcome::Exhausted { steps: 0 });
        assert_eq!(outcome.consensus(), None);
        assert_eq!(outcome.steps(), 0);
    }
}
