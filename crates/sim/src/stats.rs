//! Small summary statistics over samples of step counts.

/// Summary statistics of a sample of `u64` measurements.
#[derive(Debug, Clone, PartialEq)]
pub struct Summary {
    /// Number of samples.
    pub count: usize,
    /// Smallest sample.
    pub min: u64,
    /// Largest sample.
    pub max: u64,
    /// Arithmetic mean.
    pub mean: f64,
    /// Median (average of the two middle samples for even counts).
    pub median: f64,
    /// 95th percentile (nearest-rank).
    pub p95: u64,
    /// Sample standard deviation (0 for fewer than two samples).
    pub std_dev: f64,
}

impl Summary {
    /// Computes the summary of a non-empty sample.
    ///
    /// Returns `None` for an empty sample.
    #[must_use]
    pub fn of(samples: &[u64]) -> Option<Summary> {
        if samples.is_empty() {
            return None;
        }
        let mut sorted = samples.to_vec();
        sorted.sort_unstable();
        let count = sorted.len();
        let sum: u128 = sorted.iter().map(|&v| u128::from(v)).sum();
        let mean = sum as f64 / count as f64;
        let median = if count % 2 == 1 {
            sorted[count / 2] as f64
        } else {
            (sorted[count / 2 - 1] as f64 + sorted[count / 2] as f64) / 2.0
        };
        // Nearest-rank percentile: the ⌈0.95·count⌉-th smallest sample,
        // computed in integer arithmetic. The float route
        // `(count as f64 * 0.95).ceil()` overshoots by one whole rank at
        // exact multiples (0.95 is not a binary float: 20·0.95 evaluates
        // to 19.000000000000004, whose ceiling is 20).
        let p95_rank = (count * 95).div_ceil(100);
        let p95 = sorted[p95_rank - 1];
        let variance = if count > 1 {
            sorted
                .iter()
                .map(|&v| {
                    let d = v as f64 - mean;
                    d * d
                })
                .sum::<f64>()
                / (count as f64 - 1.0)
        } else {
            0.0
        };
        Some(Summary {
            count,
            min: sorted[0],
            max: sorted[count - 1],
            mean,
            median,
            p95,
            std_dev: variance.sqrt(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_sample() {
        assert_eq!(Summary::of(&[]), None);
    }

    #[test]
    fn single_sample() {
        let s = Summary::of(&[7]).unwrap();
        assert_eq!(s.count, 1);
        assert_eq!(s.min, 7);
        assert_eq!(s.max, 7);
        assert_eq!(s.mean, 7.0);
        assert_eq!(s.median, 7.0);
        assert_eq!(s.p95, 7);
        assert_eq!(s.std_dev, 0.0);
    }

    #[test]
    fn known_values() {
        let s = Summary::of(&[1, 2, 3, 4, 5, 6, 7, 8, 9, 10]).unwrap();
        assert_eq!(s.count, 10);
        assert_eq!(s.min, 1);
        assert_eq!(s.max, 10);
        assert!((s.mean - 5.5).abs() < 1e-12);
        assert!((s.median - 5.5).abs() < 1e-12);
        assert_eq!(s.p95, 10);
        assert!((s.std_dev - 3.0276503540974917).abs() < 1e-9);
    }

    #[test]
    fn order_does_not_matter() {
        let a = Summary::of(&[5, 1, 4, 2, 3]).unwrap();
        let b = Summary::of(&[1, 2, 3, 4, 5]).unwrap();
        assert_eq!(a, b);
        assert_eq!(a.median, 3.0);
    }

    /// The nearest-rank definition, written the slow way: the smallest
    /// sample such that at least 95% of the sample lies at or below its
    /// rank.
    fn naive_p95(sorted: &[u64]) -> u64 {
        let count = sorted.len();
        let rank = (1..=count)
            .find(|rank| 100 * rank >= 95 * count)
            .expect("rank = count always satisfies the bound");
        sorted[rank - 1]
    }

    #[test]
    fn p95_matches_naive_nearest_rank_at_every_count() {
        // Distinct ascending values make any off-by-one rank visible.
        // Exact multiples of 20 are the regression cases: the former
        // float rank arithmetic returned sorted[19] instead of
        // sorted[18] at count 20 (and sorted[95] at count 100).
        for count in 1usize..=400 {
            let samples: Vec<u64> = (0..count as u64).map(|v| 10 * v + 1).collect();
            let summary = Summary::of(&samples).unwrap();
            assert_eq!(
                summary.p95,
                naive_p95(&samples),
                "p95 diverges from nearest-rank at count {count}"
            );
        }
    }

    #[test]
    fn p95_at_exact_multiples() {
        // count = 20: ⌈0.95·20⌉ = 19 ⇒ the 19th smallest, not the max.
        let samples: Vec<u64> = (1..=20).collect();
        assert_eq!(Summary::of(&samples).unwrap().p95, 19);
        // count = 100: ⌈0.95·100⌉ = 95 ⇒ the 95th smallest.
        let samples: Vec<u64> = (1..=100).collect();
        assert_eq!(Summary::of(&samples).unwrap().p95, 95);
    }

    // Property: the integer rank arithmetic agrees with the naive
    // nearest-rank reference on arbitrary samples (duplicates, extremes,
    // and awkward counts included).
    proptest::proptest! {
        #![proptest_config(proptest::prelude::ProptestConfig::with_cases(64))]

        #[test]
        fn p95_property_matches_naive(
            samples in proptest::collection::vec(proptest::prelude::any::<u64>(), 1..300)
        ) {
            let mut sorted = samples.clone();
            sorted.sort_unstable();
            let summary = Summary::of(&samples).unwrap();
            proptest::prop_assert_eq!(summary.p95, naive_p95(&sorted));
        }
    }
}
