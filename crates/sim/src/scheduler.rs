//! Schedulers: how the next interaction is chosen.

use pp_petri::engine::{CompiledNet, DenseConfig};
use rand::Rng;

/// The random scheduler driving a simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SchedulerKind {
    /// Pick uniformly among the *enabled transitions* of the net.
    ///
    /// Cheap and adequate for measuring convergence shapes; this is the
    /// default.
    #[default]
    UniformEnabledTransition,
    /// Pick a transition with probability proportional to the number of ways
    /// it can fire in the current configuration (its number of *instances*).
    ///
    /// For classical width-2 protocols this is the textbook "pick an ordered
    /// pair of distinct agents uniformly at random" scheduler conditioned on
    /// the pair being able to interact.
    InstanceWeighted,
}

impl SchedulerKind {
    /// Chooses the next transition to fire, or `None` if no transition is
    /// enabled (the configuration is silent).
    #[must_use]
    pub fn choose<P: Clone + Ord, R: Rng>(
        self,
        net: &CompiledNet<P>,
        config: &DenseConfig,
        rng: &mut R,
    ) -> Option<usize> {
        match self {
            SchedulerKind::UniformEnabledTransition => {
                let enabled = net.enabled(config);
                if enabled.is_empty() {
                    None
                } else {
                    Some(enabled[rng.gen_range(0..enabled.len())])
                }
            }
            SchedulerKind::InstanceWeighted => {
                let weights: Vec<u128> = net
                    .transitions()
                    .iter()
                    .map(|t| {
                        if t.is_enabled(config) {
                            t.instances(config)
                        } else {
                            0
                        }
                    })
                    .collect();
                let total: u128 = weights.iter().sum();
                if total == 0 {
                    return None;
                }
                let mut draw = rng.gen_range(0..total);
                for (index, &w) in weights.iter().enumerate() {
                    if draw < w {
                        return Some(index);
                    }
                    draw -= w;
                }
                unreachable!("draw is below the total weight")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile_protocol;
    use pp_protocols::leaders_n::example_4_2;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn both_schedulers_only_pick_enabled_transitions() {
        let protocol = example_4_2(2);
        let net = compile_protocol(&protocol);
        let initial = protocol.initial_config_with_count(4);
        let config = net.dense_config(&initial);
        let mut rng = StdRng::seed_from_u64(7);
        for kind in [
            SchedulerKind::UniformEnabledTransition,
            SchedulerKind::InstanceWeighted,
        ] {
            for _ in 0..50 {
                let choice = kind.choose(&net, &config, &mut rng).expect("enabled");
                assert!(net.transitions()[choice].is_enabled(&config));
            }
        }
    }

    #[test]
    fn silent_configuration_yields_none() {
        let protocol = example_4_2(1);
        let net = compile_protocol(&protocol);
        // Only leaders: nothing can interact.
        let initial = protocol.initial_config_with_count(0);
        let config = net.dense_config(&initial);
        let mut rng = StdRng::seed_from_u64(7);
        assert_eq!(
            SchedulerKind::UniformEnabledTransition.choose(&net, &config, &mut rng),
            None
        );
        assert_eq!(
            SchedulerKind::InstanceWeighted.choose(&net, &config, &mut rng),
            None
        );
    }
}
