//! Schedulers: how the next interaction is chosen.

use pp_petri::engine::{CompiledNet, DenseConfig};
use rand::Rng;

/// The random scheduler driving a simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SchedulerKind {
    /// Pick uniformly among the *enabled transitions* of the net.
    ///
    /// Cheap and adequate for measuring convergence shapes; this is the
    /// default.
    #[default]
    UniformEnabledTransition,
    /// Pick a transition with probability proportional to the number of ways
    /// it can fire in the current configuration (its number of *instances*).
    ///
    /// For classical width-2 protocols this is the textbook "pick an ordered
    /// pair of distinct agents uniformly at random" scheduler conditioned on
    /// the pair being able to interact.
    InstanceWeighted,
}

impl SchedulerKind {
    /// Chooses the next transition to fire, or `None` if no transition is
    /// enabled (the configuration is silent).
    #[must_use]
    pub fn choose<P: Clone + Ord, R: Rng>(
        self,
        net: &CompiledNet<P>,
        config: &DenseConfig,
        rng: &mut R,
    ) -> Option<usize> {
        match self {
            SchedulerKind::UniformEnabledTransition => {
                let enabled = net.enabled(config);
                if enabled.is_empty() {
                    None
                } else {
                    Some(enabled[rng.gen_range(0..enabled.len())])
                }
            }
            SchedulerKind::InstanceWeighted => {
                let weights: Vec<u128> = net
                    .transitions()
                    .iter()
                    .map(|t| {
                        let enabled = t.is_enabled(config);
                        let instances = t.instances(config);
                        // `instances` is a product of binomials over the
                        // precondition, so it is positive exactly when every
                        // required place holds enough agents — i.e. exactly
                        // when the transition is enabled. A custom transition
                        // breaking this would desynchronize the draw loop
                        // below (its weight is gated on `enabled`, while the
                        // draw walks `instances`), so pin it down here.
                        debug_assert_eq!(
                            enabled,
                            instances > 0,
                            "enabledness and instance count disagree"
                        );
                        if enabled {
                            instances
                        } else {
                            0
                        }
                    })
                    .collect();
                let total: u128 = weights.iter().sum();
                if total == 0 {
                    return None;
                }
                let mut draw = rng.gen_range(0..total);
                let mut fallback = None;
                for (index, &w) in weights.iter().enumerate() {
                    if w == 0 {
                        continue;
                    }
                    fallback = Some(index);
                    if draw < w {
                        return Some(index);
                    }
                    draw -= w;
                }
                // With `draw < total` and only positive weights consumed,
                // the loop always returns; if arithmetic ever degraded, the
                // explicit fallback keeps the draw on an enabled transition
                // instead of falling off the loop.
                fallback
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile_protocol;
    use pp_protocols::leaders_n::example_4_2;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn both_schedulers_only_pick_enabled_transitions() {
        let protocol = example_4_2(2);
        let net = compile_protocol(&protocol);
        let initial = protocol.initial_config_with_count(4);
        let config = net.dense_config(&initial);
        let mut rng = StdRng::seed_from_u64(7);
        for kind in [
            SchedulerKind::UniformEnabledTransition,
            SchedulerKind::InstanceWeighted,
        ] {
            for _ in 0..50 {
                let choice = kind.choose(&net, &config, &mut rng).expect("enabled");
                assert!(net.transitions()[choice].is_enabled(&config));
            }
        }
    }

    #[test]
    fn instance_weighted_follows_instance_counts() {
        use pp_multiset::Multiset;
        use pp_petri::{PetriNet, Transition};
        // t0's weight is the number of a's, t1's the number of b's: with
        // 9 a's and 3 b's, t0 must be drawn about three times as often. A
        // desynchronized draw loop (weights and draws walking different
        // transition sets) would skew this ratio or fall off the loop.
        let net = PetriNet::from_transitions([
            Transition::new(
                Multiset::from_pairs([("a", 1u64)]),
                Multiset::from_pairs([("a", 1u64)]),
            ),
            Transition::new(
                Multiset::from_pairs([("b", 1u64)]),
                Multiset::from_pairs([("b", 1u64)]),
            ),
        ]);
        let engine = pp_petri::CompiledNet::compile(&net);
        let config = engine.dense_config(&Multiset::from_pairs([("a", 9u64), ("b", 3)]));
        let mut rng = StdRng::seed_from_u64(11);
        let mut counts = [0u64; 2];
        for _ in 0..12_000 {
            let choice = SchedulerKind::InstanceWeighted
                .choose(&engine, &config, &mut rng)
                .expect("both transitions enabled");
            counts[choice] += 1;
        }
        assert_eq!(counts[0] + counts[1], 12_000);
        // Expected split 9000 / 3000; allow ±600 (≈ 7.5 standard deviations).
        assert!(
            (8_400..=9_600).contains(&counts[0]),
            "instance-weighted draw skewed: {counts:?}"
        );
    }

    #[test]
    fn silent_configuration_yields_none() {
        let protocol = example_4_2(1);
        let net = compile_protocol(&protocol);
        // Only leaders: nothing can interact.
        let initial = protocol.initial_config_with_count(0);
        let config = net.dense_config(&initial);
        let mut rng = StdRng::seed_from_u64(7);
        assert_eq!(
            SchedulerKind::UniformEnabledTransition.choose(&net, &config, &mut rng),
            None
        );
        assert_eq!(
            SchedulerKind::InstanceWeighted.choose(&net, &config, &mut rng),
            None
        );
    }
}
