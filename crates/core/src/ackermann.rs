//! The Ackermann function and its inverse.
//!
//! Czerner and Esparza (PODC 2021, \[7\]) proved the previous best lower
//! bound on the state complexity of counting predicates with leaders:
//! `Ω(A⁻¹(n))` states, where `A` is an Ackermannian function. The paper under
//! reproduction improves this to `Ω((log log n)^h)`. Experiment E4 tabulates
//! both curves; this module provides the Ackermann side.

use pp_bigint::Nat;

/// The two-argument Ackermann–Péter function `A(m, n)`.
///
/// Computed iteratively with an explicit stack; intended for the tiny
/// arguments that are at all computable (`m ≤ 3`, or `m = 4` with `n ≤ 1`).
///
/// # Panics
///
/// Panics if the result would require more than roughly `2^64` recursion
/// steps (use [`ackermann_diagonal`] for symbolic reasoning instead).
#[must_use]
pub fn ackermann_peter(m: u64, n: u64) -> Nat {
    // A(m, n) with the classical closed forms for m ≤ 3 and explicit
    // recursion above; the closed forms keep the function usable for the
    // experiment tables.
    match m {
        0 => Nat::from(n) + Nat::one(),
        1 => Nat::from(n) + Nat::from(2u64),
        2 => Nat::from(2 * n + 3),
        3 => Nat::from(2u64)
            .pow(n + 3)
            .checked_sub(&Nat::from(3u64))
            .expect("2^(n+3) ≥ 3"),
        _ => {
            assert!(
                m <= 4 && n <= 1,
                "A({m}, {n}) is far beyond anything representable"
            );
            if n == 0 {
                ackermann_peter(m - 1, 1)
            } else {
                // A(4, 1) = A(3, A(4, 0)) = 2^(A(4,0)+3) - 3.
                let inner = ackermann_peter(m, n - 1);
                let exp = u64::try_from(&(inner + Nat::from(3u64))).expect("small exponent");
                Nat::from(2u64)
                    .pow(exp)
                    .checked_sub(&Nat::from(3u64))
                    .expect("2^k ≥ 3")
            }
        }
    }
}

/// The diagonal Ackermann function `A(k) = A(k, k)`.
#[must_use]
pub fn ackermann_diagonal(k: u64) -> Option<Nat> {
    if k <= 3 {
        Some(ackermann_peter(k, k))
    } else if k == 4 {
        // A(4, 4) has about 10^19728 digits: representable only symbolically.
        None
    } else {
        None
    }
}

/// The inverse Ackermann-style function used for the PODC'21 comparison:
/// the largest `k` with `A(k, k) ≤ n` (clamped to 4, since `A(4, 4)` already
/// towers over every threshold any table will ever mention).
#[must_use]
pub fn inverse_ackermann(n: &Nat) -> u64 {
    for k in 0..=3u64 {
        if &ackermann_peter(k, k) > n {
            return k.saturating_sub(1);
        }
    }
    // A(3,3) = 61 ≤ n < A(4,4): the inverse is 3; beyond that 4.
    // A(4,4) is astronomically large, so for every representable n the answer
    // is at most 4; we approximate the cut-off with 2↑↑4 bits.
    let tower = Nat::from(2u64).pow(65536);
    if n >= &tower {
        4
    } else {
        3
    }
}

/// The Czerner–Esparza lower-bound curve `Ω(A⁻¹(n))`, as a plain value
/// (the constant factor is taken to be 1, matching how experiment E4 reports
/// shapes rather than constants).
#[must_use]
pub fn czerner_esparza_lower_bound(n: &Nat) -> u64 {
    inverse_ackermann(n)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_values_match_the_definition() {
        // Reference values of the Ackermann–Péter function.
        assert_eq!(ackermann_peter(0, 0), Nat::from(1u64));
        assert_eq!(ackermann_peter(1, 1), Nat::from(3u64));
        assert_eq!(ackermann_peter(2, 2), Nat::from(7u64));
        assert_eq!(ackermann_peter(3, 3), Nat::from(61u64));
        assert_eq!(ackermann_peter(3, 0), Nat::from(5u64));
        assert_eq!(ackermann_peter(2, 0), Nat::from(3u64));
        assert_eq!(ackermann_peter(4, 0), Nat::from(13u64));
        // A(4, 1) = 2^16 - 3 = 65533.
        assert_eq!(ackermann_peter(4, 1), Nat::from(65533u64));
    }

    #[test]
    fn recursion_identity_holds_for_small_arguments() {
        // A(m+1, n+1) = A(m, A(m+1, n)).
        for m in 0..3u64 {
            for n in 0..5u64 {
                let lhs = ackermann_peter(m + 1, n + 1);
                let inner = ackermann_peter(m + 1, n);
                let rhs = ackermann_peter(m, u64::try_from(&inner).unwrap());
                assert_eq!(lhs, rhs, "identity fails at ({m}, {n})");
            }
        }
    }

    #[test]
    fn diagonal_and_inverse() {
        assert_eq!(ackermann_diagonal(2), Some(Nat::from(7u64)));
        assert_eq!(ackermann_diagonal(3), Some(Nat::from(61u64)));
        assert_eq!(ackermann_diagonal(4), None);
        assert_eq!(inverse_ackermann(&Nat::from(0u64)), 0);
        assert_eq!(inverse_ackermann(&Nat::from(2u64)), 0);
        assert_eq!(inverse_ackermann(&Nat::from(3u64)), 1);
        assert_eq!(inverse_ackermann(&Nat::from(7u64)), 2);
        assert_eq!(inverse_ackermann(&Nat::from(60u64)), 2);
        assert_eq!(inverse_ackermann(&Nat::from(61u64)), 3);
        assert_eq!(inverse_ackermann(&Nat::from(10u64).pow(100)), 3);
        assert_eq!(inverse_ackermann(&Nat::from(2u64).pow(70000)), 4);
    }

    #[test]
    fn new_bound_eventually_dominates_the_old_one() {
        // The paper's point: (log log n)^h grows without bound while A⁻¹(n)
        // is still at most 4 for every n below A(5, 5) — i.e. for every n any
        // table will ever mention. For n = 2^(10^20) the new bound already
        // exceeds that ceiling.
        let old_ceiling = 4.0;
        let new = crate::bounds::corollary_4_4_min_states(1e20, 2, 0.45);
        assert!(new > old_ceiling);
        // For moderate n the old bound is simply the constant 3.
        assert_eq!(czerner_esparza_lower_bound(&Nat::from(10u64).pow(50)), 3);
    }

    #[test]
    #[should_panic(expected = "beyond anything representable")]
    fn huge_arguments_are_rejected() {
        let _ = ackermann_peter(5, 5);
    }
}
