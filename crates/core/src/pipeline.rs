//! The Section 8 analysis pipeline on concrete protocols.
//!
//! Section 8 proves Theorem 4.3 by chaining the results of Sections 5–7 on an
//! arbitrary protocol that stably computes `(i ≥ n)`:
//!
//! 1. apply Theorem 6.1 to `T|_{P'}` (with `P' = P \ I`) and the leaders
//!    `ρ_L|_{P'}`, obtaining a bottom witness `(σ, w, Q, α, β)`;
//! 2. build the Petri net with control-states whose control-states are the
//!    `T|_Q`-component of `α|_Q`;
//! 3. extract a total cycle of that control net (Lemma 7.2);
//! 4. shrink the resulting multicycles with Lemma 7.3 to pump the input place
//!    while staying stabilized, contradicting stable computation for large `n`.
//!
//! [`analyze_protocol`] executes steps 1–3 (and exercises step 4 when the
//! control net has cycles) on a *concrete* protocol and reports every
//! intermediate object, together with the Section 8 constants and the final
//! Theorem 4.3 bound. It is the "open the hood" entry point used by the
//! `lower_bound_pipeline` example and experiment E10. Every reachability
//! analysis underneath (bottom witnesses, components, control nets) runs on
//! the dense interned engine of `pp_petri` (see `DESIGN.md`).

use crate::bounds::theorem_4_3_bound_for_protocol;
use crate::section8::Section8Constants;
use pp_bigint::PowerBound;
use pp_diophantine::HilbertConfig;
use pp_petri::bottom::{find_bottom_witness_in, theorem_6_1_bound, BottomWitness};
use pp_petri::control::ControlNet;
use pp_petri::cycles::{shrink_multicycle, ShrunkMulticycle};
use pp_petri::{Analysis, ExplorationLimits};
use pp_population::{Protocol, StateId};
use std::collections::BTreeSet;

/// The report produced by [`analyze_protocol`].
#[derive(Debug, Clone)]
pub struct PipelineReport {
    /// Name of the analyzed protocol.
    pub protocol_name: String,
    /// Number of states `|P|`.
    pub states: u64,
    /// Interaction-width of the protocol.
    pub width: u64,
    /// Number of leaders `|ρ_L|`.
    pub leaders: u64,
    /// The Theorem 4.3 bound for this protocol shape.
    pub theorem_4_3_bound: PowerBound,
    /// The Theorem 6.1 bound for `T|_{P'}` from `ρ_L|_{P'}`.
    pub theorem_6_1_bound: PowerBound,
    /// The Section 8 constants for this protocol shape.
    pub constants: Section8Constants,
    /// The bottom witness of step 1, if one was found within the limits.
    pub witness: Option<BottomWitness<StateId>>,
    /// Number of control-states of the step-2 control net.
    pub control_states: Option<usize>,
    /// Number of edges of the step-2 control net.
    pub control_edges: Option<usize>,
    /// Whether the control net is strongly connected.
    pub strongly_connected: Option<bool>,
    /// Length of the Lemma 7.2 total cycle, if one exists.
    pub total_cycle_length: Option<usize>,
    /// The Lemma 7.3 shrinking of (a small power of) the total cycle, if the
    /// control net has cycles.
    pub shrunk: Option<ShrunkMulticycle<StateId>>,
}

impl PipelineReport {
    /// Returns `true` when every step that is applicable to this protocol
    /// produced its object (a witness; and, when the control net has edges, a
    /// total cycle).
    #[must_use]
    pub fn is_complete(&self) -> bool {
        self.witness.is_some()
            && match self.control_edges {
                Some(edges) if edges > 0 => self.total_cycle_length.is_some(),
                _ => true,
            }
    }
}

/// Runs the Section 8 pipeline on a concrete protocol.
///
/// The exploration `limits` bound the reachability analyses of steps 1 and 2;
/// the analysis is exact within them and reports `None` for the objects it
/// could not construct.
///
/// One [`Analysis`] session over the restricted net `T|_{P'}` is threaded
/// through the witness search, so the net is compiled once and the
/// truncated pumping exploration is *resumed* — not rebuilt — by the
/// full-limit bottom search.
#[must_use]
pub fn analyze_protocol(protocol: &Protocol, limits: &ExplorationLimits) -> PipelineReport {
    let net = protocol.net();
    // P' = P \ I.
    let non_initial: BTreeSet<StateId> = protocol
        .states()
        .filter(|s| !protocol.initial_states().contains(s))
        .collect();
    let restricted = net.restrict(&non_initial);
    let leaders_restricted = protocol.leaders().restrict(&non_initial);

    let mut restricted_session = Analysis::new(&restricted);
    let witness = find_bottom_witness_in(&mut restricted_session, &leaders_restricted, limits);

    let mut control_states = None;
    let mut control_edges = None;
    let mut strongly_connected = None;
    let mut total_cycle_length = None;
    let mut shrunk = None;
    if let Some(witness) = &witness {
        if let Some(control) =
            ControlNet::from_component(net, &witness.q_places, &witness.alpha, limits)
        {
            control_states = Some(control.num_control_states());
            control_edges = Some(control.num_edges());
            strongly_connected = Some(control.is_strongly_connected());
            if let Some(anchor) = control.control_state_index(&witness.alpha) {
                if let Some(cycle) = control.total_cycle(anchor) {
                    total_cycle_length = Some(cycle.len());
                    // Step 4 (demonstrative): shrink the multicycle made of a
                    // few copies of the total cycle, requiring sign
                    // preservation above a small threshold.
                    let mut parikh = control.parikh(&cycle);
                    for count in &mut parikh {
                        *count *= 8;
                    }
                    shrunk = shrink_multicycle(
                        &control,
                        &parikh,
                        &BTreeSet::new(),
                        4,
                        &HilbertConfig::default(),
                    )
                    .ok();
                }
            }
        }
    }

    PipelineReport {
        protocol_name: protocol.name().to_owned(),
        states: protocol.num_states() as u64,
        width: protocol.width(),
        leaders: protocol.num_leaders(),
        theorem_4_3_bound: theorem_4_3_bound_for_protocol(protocol),
        theorem_6_1_bound: theorem_6_1_bound(&restricted, &leaders_restricted),
        constants: Section8Constants::for_protocol(protocol),
        witness,
        control_states,
        control_edges,
        strongly_connected,
        total_cycle_length,
        shrunk,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pp_protocols::leaders_n::example_4_2;
    use pp_protocols::modulo::modulo_with_leader;

    #[test]
    fn example_4_2_pipeline_reaches_a_terminal_component() {
        let protocol = example_4_2(2);
        let report = analyze_protocol(&protocol, &ExplorationLimits::default());
        assert_eq!(report.states, 6);
        assert_eq!(report.width, 2);
        assert_eq!(report.leaders, 2);
        assert!(report.is_complete());
        let witness = report.witness.as_ref().expect("witness found");
        // The leaders-only run of Example 4.2 ends in an all-unbarred bottom
        // configuration; the control component around it is a single state
        // with no internal cycle.
        assert!(witness.pumped_places.is_empty());
        assert_eq!(report.control_states, Some(1));
        assert_eq!(report.control_edges, Some(0));
        assert_eq!(report.total_cycle_length, None);
        // The Theorem 6.1 bound is for the restricted net on 5 places.
        assert!(report.theorem_6_1_bound.approx_log2() > 1e10);
        assert_eq!(
            report
                .theorem_4_3_bound
                .approx_cmp(&report.constants.final_bound),
            std::cmp::Ordering::Equal
        );
    }

    #[test]
    fn modulo_pipeline_finds_a_pumping_witness_and_a_total_cycle() {
        let protocol = modulo_with_leader(2, 0);
        let limits = ExplorationLimits::with_max_configurations(800);
        let report = analyze_protocol(&protocol, &limits);
        let witness = report.witness.as_ref().expect("witness found");
        // The leader's residue walk pumps the done-agents: a genuine
        // Theorem 6.1 witness with a non-trivial Q.
        assert!(!witness.pumped_places.is_empty());
        assert!(witness.q_places.len() < 5);
        // The control net around the leader component has both states and a
        // total cycle within the Lemma 7.2 bound.
        let states = report.control_states.unwrap();
        let edges = report.control_edges.unwrap();
        assert!(states >= 2);
        assert!(edges >= 2);
        assert_eq!(report.strongly_connected, Some(true));
        let cycle_len = report.total_cycle_length.unwrap();
        assert!(cycle_len <= states * edges);
        // Lemma 7.3 shrinking succeeded and preserved signs.
        let shrunk = report.shrunk.as_ref().expect("shrinking succeeded");
        assert!(shrunk.signs_preserved(4));
        assert!(report.is_complete());
    }

    #[test]
    fn leaderless_protocols_are_handled() {
        // A leaderless protocol: P' exploration starts from the empty
        // configuration, which is trivially bottom.
        let protocol = pp_protocols::flock::flock_of_birds_unary(3);
        let report = analyze_protocol(&protocol, &ExplorationLimits::default());
        assert_eq!(report.leaders, 0);
        let witness = report.witness.as_ref().expect("witness found");
        assert!(witness.alpha.is_empty());
        assert!(report.is_complete());
    }
}
