//! The constants of the Section 8 proof.
//!
//! Section 8 of the paper instantiates the machinery of Sections 5–7 with a
//! cascade of constants derived from the protocol's parameters
//! `d = |P|`, `‖T‖∞` and `‖ρ_L‖∞`:
//!
//! ```text
//! b = (4 + 4‖T‖∞ + 2‖ρ_L‖∞)^((d−1)^(d−1)·(1 + (2 + (d−1)^(d−1))^d))
//! h = d·(1 + ‖T‖∞)^b          k = d·h^(d²+d+1)        a = h^(2d+3)
//! ℓ = h^(5d²)                 r = 2(d−1)^(d−1)(1+(2+(d−1)^(d−1))^d)(5d²+2d+4)
//! ```
//!
//! `b` is doubly exponential and still representable symbolically as a
//! [`PowerBound`]; `h`, `k`, `a` and `ℓ` stack a further exponential on top
//! (their exponent is `b` itself), so they are reported as *tower levels*:
//! the value `log₂ log₂ x`, which is what the experiment tables print. The
//! final exponent `r` and the Theorem 4.3 bound derived from it are again
//! representable.

use crate::bounds::theorem_4_3_bound;
use pp_bigint::{Nat, PowerBound};
use pp_population::Protocol;

/// The Section 8 constants for a protocol shape `(d, ‖T‖∞, ‖ρ_L‖∞, |ρ_L|)`.
#[derive(Debug, Clone)]
pub struct Section8Constants {
    /// Number of states `d = |P|`.
    pub d: u64,
    /// Transition norm `‖T‖∞` (bounded by the interaction-width).
    pub net_norm: u64,
    /// Leader norm `‖ρ_L‖∞`.
    pub leader_norm: u64,
    /// The constant `b` (Theorem 6.1 instantiated on `P' = P \ I`).
    pub b: PowerBound,
    /// `log₂ log₂ h` where `h = d(1 + ‖T‖∞)^b`.
    pub h_log_log2: f64,
    /// `log₂ log₂ k` where `k = d·h^(d²+d+1)`.
    pub k_log_log2: f64,
    /// `log₂ log₂ a` where `a = h^(2d+3)`.
    pub a_log_log2: f64,
    /// `log₂ log₂ ℓ` where `ℓ = h^(5d²)`.
    pub ell_log_log2: f64,
    /// The final exponent `r`.
    pub r: Nat,
    /// The Theorem 4.3 bound `(4 + 4·width + 2·|ρ_L|)^(d^((d+2)²))` that the
    /// section ultimately establishes.
    pub final_bound: PowerBound,
}

impl Section8Constants {
    /// Computes the constants from the protocol shape.
    ///
    /// `width` and `num_leaders` are only used for the final Theorem 4.3
    /// bound (which is stated in terms of the interaction-width and `|ρ_L|`
    /// rather than the norms).
    #[must_use]
    pub fn new(d: u64, net_norm: u64, leader_norm: u64, width: u64, num_leaders: u64) -> Self {
        let base = Nat::from(4 + 4 * net_norm + 2 * leader_norm);
        let b_exponent = if d == 0 {
            Nat::zero()
        } else {
            pp_petri::bottom::theorem_6_1_exponent(d.saturating_sub(1))
        };
        let b = PowerBound::new(base, b_exponent);
        // log₂ h = log₂ d + b·log₂(1 + ‖T‖∞); log₂ log₂ h via logarithms of b.
        let log2_b = b.approx_log2();
        let log2_log2_h = {
            let log2_of_one_plus_norm = ((1 + net_norm) as f64).log2().max(f64::MIN_POSITIVE);
            // log₂ h ≈ b·log₂(1+‖T‖∞) (the +log₂ d term is negligible);
            // log₂ log₂ h = log₂ b + log₂ log₂(1+‖T‖∞)  — computed via log₂ b
            // to avoid overflowing f64 with b itself.
            log2_b + log2_of_one_plus_norm.log2()
        };
        let r = if d >= 1 {
            let dm = Nat::from(d - 1).pow(d.saturating_sub(1));
            Nat::from(2u64)
                * &dm
                * (Nat::one() + (Nat::from(2u64) + &dm).pow(d))
                * Nat::from(5 * d * d + 2 * d + 4)
        } else {
            Nat::zero()
        };
        Section8Constants {
            d,
            net_norm,
            leader_norm,
            h_log_log2: log2_log2_h,
            k_log_log2: log2_log2_h + tower_bump(log2_log2_h, (d * d + d + 1) as f64),
            a_log_log2: log2_log2_h + tower_bump(log2_log2_h, (2 * d + 3) as f64),
            ell_log_log2: log2_log2_h + tower_bump(log2_log2_h, (5 * d * d) as f64),
            b,
            r,
            final_bound: theorem_4_3_bound(d, width, num_leaders),
        }
    }

    /// Computes the constants of a concrete protocol.
    #[must_use]
    pub fn for_protocol(protocol: &Protocol) -> Self {
        Section8Constants::new(
            protocol.num_states() as u64,
            protocol.net().sup_norm(),
            protocol.leaders().sup_norm(),
            protocol.width(),
            protocol.num_leaders(),
        )
    }
}

/// `log₂ log₂ (x^e) − log₂ log₂ x` for a value known only through
/// `log₂ log₂ x`: the correction `log₂(1 + log₂ e / log₂ x)`, which is
/// essentially zero for the astronomically large `x` of Section 8 but is
/// computed exactly when `log₂ x` still fits in an `f64`.
fn tower_bump(log_log_x: f64, exponent: f64) -> f64 {
    let log2_e = exponent.max(1.0).log2();
    if !log_log_x.is_finite() || log_log_x <= 0.0 {
        return log2_e.max(0.0);
    }
    if log_log_x > 500.0 {
        // log₂ x overflows f64; the relative correction is below resolution.
        return 0.0;
    }
    let log_x = log_log_x.exp2();
    ((log_x * exponent).log2() - log_log_x).max(0.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pp_protocols::leaders_n::example_4_2;

    #[test]
    fn constants_for_example_4_2() {
        let protocol = example_4_2(3);
        let constants = Section8Constants::for_protocol(&protocol);
        assert_eq!(constants.d, 6);
        assert_eq!(constants.net_norm, 1);
        assert_eq!(constants.leader_norm, 3);
        // b's base is 4 + 4 + 6 = 14; its exponent is (d−1)^(d−1)(1+(2+(d−1)^(d−1))^d).
        assert_eq!(constants.b.base(), &Nat::from(14u64));
        let dm = 5u64.pow(5);
        let expected_exponent = Nat::from(dm) * (Nat::one() + Nat::from(2 + dm).pow(6));
        assert_eq!(constants.b.exponent(), &expected_exponent);
        // h, k, a, ℓ stack exponentials: their double-logs are ordered.
        assert!(constants.h_log_log2 > 60.0);
        assert!(constants.k_log_log2 >= constants.h_log_log2);
        assert!(constants.a_log_log2 >= constants.h_log_log2);
        assert!(constants.ell_log_log2 >= constants.a_log_log2);
        // r is a plain (large) natural number.
        assert!(constants.r > Nat::from(10u64).pow(20));
        // The final bound dominates b.
        assert_eq!(
            constants.b.approx_cmp(&constants.final_bound),
            std::cmp::Ordering::Less
        );
    }

    #[test]
    fn constants_grow_with_the_state_count() {
        let small = Section8Constants::new(4, 1, 1, 2, 2);
        let large = Section8Constants::new(6, 1, 1, 2, 2);
        assert!(small.b.approx_log2() < large.b.approx_log2());
        assert!(small.h_log_log2 < large.h_log_log2);
        assert!(small.r < large.r);
        assert_eq!(
            small.final_bound.approx_cmp(&large.final_bound),
            std::cmp::Ordering::Less
        );
    }

    #[test]
    fn degenerate_shapes_do_not_panic() {
        // d = 1 means P = I = {i}: the proof handles it separately (n = 1),
        // and the constants collapse accordingly.
        let c = Section8Constants::new(1, 0, 0, 1, 0);
        assert_eq!(c.d, 1);
        assert_eq!(c.b.exponent(), &Nat::zero());
        assert_eq!(c.b.to_nat(64), Some(Nat::one()));
        assert!(c.r > Nat::zero());
        let zero = Section8Constants::new(0, 0, 0, 0, 0);
        assert_eq!(zero.r, Nat::zero());
    }
}
