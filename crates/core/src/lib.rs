//! The paper's contribution, made executable.
//!
//! *State Complexity of Protocols With Leaders* (Leroux, PODC 2022) proves
//! that any protocol of bounded interaction-width and bounded number of
//! leaders that stably computes the counting predicate `(i ≥ n)` needs at
//! least `Ω((log log n)^h)` states for every `h < 1/2`, (almost) matching the
//! `O(log log n)` upper bound of Blondin, Esparza and Jaax and improving the
//! inverse-Ackermannian lower bound of Czerner and Esparza (PODC 2021).
//!
//! This crate turns the quantitative content of the paper into code:
//!
//! * [`bounds`] — Theorem 4.3 (`n ≤ (4 + 4·width + 2·leaders)^(|P|^((|P|+2)²))`),
//!   Corollary 4.4 (the `Ω((log log n)^h)` state lower bound), and the
//!   upper-bound curves of \[6\] used in the gap experiments;
//! * [`section8`] — the constants `b, h, k, a, ℓ, r` of the Section 8 proof;
//! * [`ackermann`] — the Ackermann function and its inverse, used to compare
//!   against the prior PODC'21 lower bound;
//! * [`pipeline`] — the Section 8 analysis pipeline run on *concrete*
//!   protocols: bottom witness (Theorem 6.1), control-state component, total
//!   cycle (Lemma 7.2) and multicycle shrinking (Lemma 7.3), reported as an
//!   inspectable structure;
//! * [`batch`] — the multi-protocol batch service layer: fleets of analysis
//!   jobs over many protocols, deduplicated behind shared compiled sessions
//!   and scheduled under one fair-shared token budget.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ackermann;
pub mod batch;
pub mod bounds;
pub mod pipeline;
pub mod section8;

pub use batch::ProtocolBatch;
pub use bounds::{
    bej_upper_bound_states, corollary_4_4_min_states, leaderless_upper_bound_states,
    theorem_4_3_bound, theorem_4_3_bound_for_protocol, theorem_4_3_exponent,
};
pub use pipeline::{analyze_protocol, PipelineReport};
pub use section8::Section8Constants;
