//! The multi-protocol batch service layer (`pp_core::batch`).
//!
//! The serving story of this workspace stacks three layers: the dense
//! engine runs one fixpoint fast, the [`Analysis`]
//! session runs many queries on one compiled net, and this module runs
//! **fleets of protocols** — the shape of a production front door that
//! receives heterogeneous analysis requests and answers them under one
//! resource budget.
//!
//! [`ProtocolBatch`] is a thin, protocol-aware veneer over the generic
//! net-level scheduler [`pp_petri::batch`], which does the heavy lifting:
//! identical nets are deduplicated behind shared compiled sessions,
//! jobs of one round run concurrently under a [`Parallelism`] knob, and a
//! shared token pool is fair-shared and redistributed across rounds with
//! every job's result bit-identical to a solo run at its final budget
//! (see the [`pp_petri::batch`] module docs for the scheduling model).
//! This veneer adds the protocol vocabulary: jobs are named after
//! protocols, configurations come from agent counts or input valuations,
//! and the net behind each job is [`Protocol::net`].
//!
//! ```
//! use pp_protocols::leaders_n::example_4_2;
//! use pp_statecomplexity::batch::ProtocolBatch;
//!
//! // Example 4.2's net is independent of n (only the leader count in the
//! // initial configuration changes), so the whole family batches onto a
//! // single compiled engine.
//! let report = ProtocolBatch::new()
//!     .reachability(&example_4_2(1), 4)
//!     .reachability(&example_4_2(1), 5)
//!     .reachability(&example_4_2(2), 4)
//!     .run();
//! assert_eq!(report.jobs.len(), 3);
//! assert_eq!(report.distinct_nets, 1);
//! assert_eq!(report.compile_cache_hits, 2);
//! assert!(report.all_complete());
//! ```
//!
//! The experiments drive the full catalog of `pp-protocols` through this
//! layer (`pp_protocols::batch`, `bench_batch_throughput`); the
//! exhaustive verifier of `pp-population` batches its per-input graphs
//! through the same net-level scheduler.

use pp_multiset::Multiset;
use pp_petri::batch::{Batch, BatchJob, CancelToken};
use pp_petri::{Analysis, ExplorationLimits, Parallelism};
use pp_population::{Protocol, StateId};

pub use pp_petri::batch::{BatchOutcome, BatchQuery, JobReport, PoolReport};

/// The report type of a protocol batch: the net-level [`BatchReport`]
/// over protocol state ids.
///
/// [`BatchReport`]: pp_petri::batch::BatchReport
pub type BatchReport = pp_petri::batch::BatchReport<StateId>;

/// A batch of analysis jobs over population protocols.
///
/// See the [module documentation](self); every method mirrors a query
/// shape of the underlying [`Analysis`] session, and
/// [`run`](Self::run) hands the assembled jobs to the net-level
/// scheduler.
#[derive(Clone, Default)]
#[must_use = "a batch does nothing until run"]
pub struct ProtocolBatch {
    inner: Batch<StateId>,
    limits: ExplorationLimits,
    cancel: Option<CancelToken>,
}

impl ProtocolBatch {
    /// An empty batch (sequential runner, no shared pool, default
    /// [`ExplorationLimits`] for subsequently added jobs).
    pub fn new() -> Self {
        ProtocolBatch {
            inner: Batch::new(),
            limits: ExplorationLimits::default(),
            cancel: None,
        }
    }

    /// Sets the limits applied to jobs added *after* this call (their
    /// budget demand under a shared pool).
    pub fn limits(mut self, limits: ExplorationLimits) -> Self {
        self.limits = limits;
        self
    }

    /// Puts the batch under a shared token budget (see
    /// [`Batch::pool`]).
    pub fn pool(mut self, tokens: usize) -> Self {
        self.inner = self.inner.pool(tokens);
        self
    }

    /// Sets how many OS threads may run different jobs of one round
    /// concurrently (see [`Batch::parallelism`]). Results are identical
    /// across all modes.
    pub fn parallelism(mut self, parallelism: Parallelism) -> Self {
        self.inner = self.inner.parallelism(parallelism);
        self
    }

    /// Seeds the batch with an existing [`Analysis`] session: jobs whose
    /// net equals the session's reuse its compiled engine and cached
    /// results instead of recompiling (see [`Batch::seed_session`]).
    /// This is how a long-lived service — `pp_serve` is the worked
    /// example — keeps protocol analyses hot across requests.
    pub fn seed_session(mut self, session: &Analysis<StateId>) -> Self {
        self.inner = self.inner.seed_session(session);
        self
    }

    /// Attaches a cancellation token to jobs added *after* this call
    /// (mirroring the [`limits`](Self::limits) convention): cancelling
    /// the token abandons those jobs at the next round barrier, with
    /// their unused pool tokens refunded (see [`BatchJob::cancel_token`]).
    pub fn cancel_token(mut self, token: CancelToken) -> Self {
        self.cancel = Some(token);
        self
    }

    /// Adds a reachability job: the protocol's state space from
    /// `ρ_L + agents · initial-state`.
    pub fn reachability(self, protocol: &Protocol, agents: u64) -> Self {
        let initial = protocol.initial_config_with_count(agents);
        let name = format!("{}/reach[{agents}]", protocol.name());
        self.job_named(name, protocol, |net, name, limits| {
            BatchJob::reachability(name, net, [initial]).limits(limits)
        })
    }

    /// Adds a reachability job from an explicit initial configuration.
    pub fn reachability_from(
        self,
        protocol: &Protocol,
        name: impl Into<String>,
        initial: Multiset<StateId>,
    ) -> Self {
        self.job_named(name.into(), protocol, |net, name, limits| {
            BatchJob::reachability(name, net, [initial]).limits(limits)
        })
    }

    /// Adds an exact backward-coverability job for `target`.
    pub fn coverability(self, protocol: &Protocol, target: Multiset<StateId>) -> Self {
        let name = format!(
            "{}/cover[{}]",
            protocol.name(),
            protocol.display_config(&target)
        );
        self.job_named(name, protocol, |net, name, limits| {
            BatchJob::coverability(name, net, target).limits(limits)
        })
    }

    /// Adds a Karp–Miller tree job from `ρ_L + agents · initial-state`
    /// with the node budget `max_nodes`.
    pub fn karp_miller(self, protocol: &Protocol, agents: u64, max_nodes: usize) -> Self {
        let initial = protocol.initial_config_with_count(agents);
        let name = format!("{}/km[{agents}]", protocol.name());
        self.job_named(name, protocol, move |net, name, limits| {
            BatchJob::karp_miller(name, net, initial).limits(ExplorationLimits {
                max_configurations: max_nodes,
                ..limits
            })
        })
    }

    /// Adds a shortest-covering-word job (`from --σ--> β ≥ target`).
    pub fn covering_word(
        self,
        protocol: &Protocol,
        from: Multiset<StateId>,
        target: Multiset<StateId>,
    ) -> Self {
        let name = format!(
            "{}/word[{}]",
            protocol.name(),
            protocol.display_config(&target)
        );
        self.job_named(name, protocol, |net, name, limits| {
            BatchJob::covering_word(name, net, from, target).limits(limits)
        })
    }

    /// Adds a pre-built net-level job (the escape hatch to the full
    /// [`pp_petri::batch`] vocabulary).
    pub fn job(mut self, job: BatchJob<StateId>) -> Self {
        self.inner = self.inner.job(job);
        self
    }

    /// Runs the batch.
    #[must_use = "the report carries every job's result"]
    pub fn run(self) -> BatchReport {
        self.inner.run()
    }

    fn job_named<F>(mut self, name: String, protocol: &Protocol, build: F) -> Self
    where
        F: FnOnce(pp_petri::PetriNet<StateId>, String, ExplorationLimits) -> BatchJob<StateId>,
    {
        let mut job = build(protocol.net().clone(), name, self.limits);
        if let Some(token) = &self.cancel {
            job = job.cancel_token(token.clone());
        }
        self.inner = self.inner.job(job);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pp_petri::Completion;
    use pp_protocols::leaders_n::example_4_2;

    #[test]
    fn a_mixed_protocol_batch_reports_every_shape() {
        let protocol = example_4_2(1);
        let i = protocol.state_id("i").unwrap();
        let p = protocol.state_id("p").unwrap();
        let q = protocol.state_id("q").unwrap();
        let report = ProtocolBatch::new()
            .reachability(&protocol, 3)
            .coverability(&protocol, Multiset::from_pairs([(p, 1u64), (q, 1)]))
            .karp_miller(&protocol, 2, 10_000)
            .covering_word(
                &protocol,
                protocol.initial_config_with_count(2),
                Multiset::unit(p),
            )
            .run();
        assert_eq!(report.jobs.len(), 4);
        assert_eq!(report.distinct_nets, 1, "one compile for the whole batch");
        assert_eq!(report.compile_cache_hits, 3);
        assert!(report.all_complete());
        let reach = report.job("example-4.2(n=1)/reach[3]").unwrap();
        assert!(reach.outcome.as_reachability().unwrap().len() > 1);
        let km = report.job("example-4.2(n=1)/km[2]").unwrap();
        assert!(km.outcome.as_karp_miller().unwrap().place_is_bounded(&i));
    }

    #[test]
    fn seeded_sessions_share_their_compiled_engine_and_cached_results() {
        use pp_petri::Analysis;
        let protocol = example_4_2(1);
        let initial = protocol.initial_config_with_count(3);
        // A long-lived session that has already served the same query.
        let mut session = Analysis::new(protocol.net());
        let warm = session.reachability([initial.clone()]).run();
        let report = ProtocolBatch::new()
            .seed_session(&session)
            .reachability(&protocol, 3)
            .run();
        assert_eq!(
            report.compile_cache_hits, 1,
            "the seed's compiled engine serves the job"
        );
        let job = &report.jobs[0];
        assert!(job.shared_compile, "no fresh compile behind a live seed");
        assert!(job.outcome.as_reachability().unwrap().identical_to(&warm));
    }

    #[test]
    fn cancel_tokens_pass_through_to_subsequent_jobs_only() {
        let protocol = example_4_2(1);
        let token = CancelToken::new();
        token.cancel();
        let report = ProtocolBatch::new()
            .reachability(&protocol, 2)
            .cancel_token(token)
            .reachability(&protocol, 3)
            .run();
        assert!(!report.jobs[0].cancelled, "added before the token");
        assert!(report.jobs[1].cancelled, "added after the token");
        assert!(report.jobs[0].outcome.as_reachability().unwrap().len() > 1);
    }

    #[test]
    fn pooled_protocol_jobs_stay_bit_identical_to_solo_runs() {
        use pp_petri::Analysis;
        let protocol = pp_protocols::flock::flock_of_birds_unary(3);
        let agents = [6u64, 7, 8];
        let mut batch = ProtocolBatch::new().pool(60);
        for &a in &agents {
            batch = batch.reachability(&protocol, a);
        }
        let report = batch.run();
        assert!(
            report
                .jobs
                .iter()
                .any(|job| job.completion == Completion::ConfigBudget),
            "the pool is small enough that some job must be truncated"
        );
        for (job, &a) in report.jobs.iter().zip(&agents) {
            let solo = Analysis::new(protocol.net())
                .reachability([protocol.initial_config_with_count(a)])
                .limits(job.final_limits)
                .run();
            assert!(
                job.outcome.as_reachability().unwrap().identical_to(&solo),
                "{} != solo at {:?}",
                job.name,
                job.final_limits
            );
        }
    }
}
