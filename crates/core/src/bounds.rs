//! Theorem 4.3, Corollary 4.4 and the comparison curves.

use pp_bigint::{Nat, PowerBound};
use pp_population::Protocol;

/// The exponent `|P|^((|P|+2)²)` of Theorem 4.3.
///
/// ```
/// use pp_bigint::Nat;
/// use pp_statecomplexity::theorem_4_3_exponent;
///
/// assert_eq!(theorem_4_3_exponent(1), Nat::one());
/// assert_eq!(theorem_4_3_exponent(2), Nat::from(2u64).pow(16));
/// ```
#[must_use]
pub fn theorem_4_3_exponent(states: u64) -> Nat {
    Nat::from(states).pow((states + 2) * (states + 2))
}

/// The bound of Theorem 4.3: for every finite-interaction-width protocol with
/// `states` states, interaction-width `width` and `leaders` leaders that
/// stably computes `(i ≥ n)`,
///
/// ```text
/// n ≤ (4 + 4·width + 2·leaders)^(states^((states+2)²)).
/// ```
///
/// The result is returned symbolically because the exponent alone exceeds any
/// machine integer as soon as `states ≥ 5` or so.
#[must_use]
pub fn theorem_4_3_bound(states: u64, width: u64, leaders: u64) -> PowerBound {
    let base = Nat::from(4 + 4 * width + 2 * leaders);
    PowerBound::new(base, theorem_4_3_exponent(states))
}

/// [`theorem_4_3_bound`] instantiated on a concrete protocol.
#[must_use]
pub fn theorem_4_3_bound_for_protocol(protocol: &Protocol) -> PowerBound {
    theorem_4_3_bound(
        protocol.num_states() as u64,
        protocol.width(),
        protocol.num_leaders(),
    )
}

/// Corollary 4.4: a lower bound on the number of states of any protocol with
/// interaction-width and number of leaders at most `m` that stably computes
/// `(i ≥ n)`, for an exponent `h < 1/2`:
///
/// ```text
/// |P| ≥ ((log log n − log log (10m)) / log 2)^h − 2.
/// ```
///
/// The argument `log2_n` is `log₂ n` (so thresholds far beyond `u64` can be
/// handled); the result is a real number — the paper's `Ω((log log n)^h)` —
/// and may be negative or NaN for tiny `n`, in which case the trivial bound 0
/// is returned.
///
/// # Panics
///
/// Panics if `m` is zero or `h` is not in `(0, 0.5)`.
#[must_use]
pub fn corollary_4_4_min_states(log2_n: f64, m: u64, h: f64) -> f64 {
    assert!(m >= 1, "width/leader bound must be at least 1");
    assert!(h > 0.0 && h < 0.5, "the corollary requires 0 < h < 1/2");
    // log log n, using natural logarithms as in the paper (any fixed base
    // only shifts the additive constant).
    let loglog_n = (log2_n * std::f64::consts::LN_2).ln();
    let loglog_10m = ((10 * m) as f64).ln().ln();
    let value = ((loglog_n - loglog_10m) / std::f64::consts::LN_2).powf(h) - 2.0;
    if value.is_finite() && value > 0.0 {
        value
    } else {
        0.0
    }
}

/// The `O(log log n)` upper-bound curve of Blondin, Esparza and Jaax \[6\]:
/// for infinitely many `n` there is a protocol with `≤ c·log log n` states
/// (interaction-width 2, 2 leaders). The function returns `log₂ log₂ n`, the
/// curve's shape with `c = 1`; experiment E3 plots it against
/// [`corollary_4_4_min_states`].
#[must_use]
pub fn bej_upper_bound_states(log2_n: f64) -> f64 {
    if log2_n <= 1.0 {
        return 1.0;
    }
    log2_n.log2().max(1.0)
}

/// The `O(log n)` leaderless upper-bound curve mentioned in Section 9 (and
/// realized for powers of two by `pp_protocols::flock::flock_of_birds_doubling`).
#[must_use]
pub fn leaderless_upper_bound_states(log2_n: f64) -> f64 {
    log2_n.max(1.0)
}

/// Convenience: `log₂ n` of an integer threshold.
#[must_use]
pub fn log2_of_threshold(n: u64) -> f64 {
    (n.max(1) as f64).log2()
}

#[cfg(test)]
mod tests {
    use super::*;
    use pp_protocols::leaders_n::example_4_2;

    #[test]
    fn exponent_small_values() {
        assert_eq!(theorem_4_3_exponent(1), Nat::one());
        assert_eq!(theorem_4_3_exponent(2), Nat::from(65536u64));
        assert_eq!(theorem_4_3_exponent(3), Nat::from(3u64).pow(25));
    }

    #[test]
    fn bound_is_monotone_in_every_argument() {
        let base = theorem_4_3_bound(4, 2, 2);
        assert_eq!(
            base.approx_cmp(&theorem_4_3_bound(5, 2, 2)),
            std::cmp::Ordering::Less
        );
        assert_eq!(
            base.approx_cmp(&theorem_4_3_bound(4, 3, 2)),
            std::cmp::Ordering::Less
        );
        assert_eq!(
            base.approx_cmp(&theorem_4_3_bound(4, 2, 3)),
            std::cmp::Ordering::Less
        );
    }

    #[test]
    fn bound_value_for_one_state() {
        // One state: exponent 1, bound = 4 + 4w + 2L.
        let b = theorem_4_3_bound(1, 1, 0);
        assert_eq!(b.to_nat(64), Some(Nat::from(8u64)));
    }

    #[test]
    fn bound_for_example_4_2_exceeds_its_threshold() {
        // Example 4.2 with n leaders decides (i ≥ n); Theorem 4.3 must allow it.
        for n in [1u64, 5, 50, 5000] {
            let protocol = example_4_2(n);
            let bound = theorem_4_3_bound_for_protocol(&protocol);
            assert_eq!(
                PowerBound::exact(Nat::from(n)).approx_cmp(&bound),
                std::cmp::Ordering::Less,
                "Theorem 4.3 bound must dominate the protocol's threshold"
            );
        }
    }

    #[test]
    fn corollary_4_4_grows_with_n() {
        let h = 0.45;
        let small = corollary_4_4_min_states(log2_of_threshold(1 << 20), 2, h);
        let large = corollary_4_4_min_states(1e9, 2, h);
        let huge = corollary_4_4_min_states(1e100, 2, h);
        assert!(large > small);
        assert!(huge > large);
        assert!(huge > 10.0);
        // Tiny thresholds give the trivial bound.
        assert_eq!(corollary_4_4_min_states(1.0, 2, h), 0.0);
    }

    #[test]
    fn corollary_is_consistent_with_theorem_4_3() {
        // If a protocol has s states, width ≤ m and leaders ≤ m, Theorem 4.3
        // caps its threshold at N = (10m)^(s^((s+2)²)); plugging log₂(N) into
        // the corollary must give back at most s states. (The corollary is an
        // asymptotic Ω-bound: the inequality `d ≤ 2^((d+2)^ε)` used in its
        // proof requires `h` comfortably below 1/2 for small state counts, so
        // the consistency check uses h = 0.3.)
        let m = 2u64;
        for s in 2..=10u64 {
            let bound = theorem_4_3_bound(s, m, m);
            let log2_n = bound.approx_log2();
            let lower = corollary_4_4_min_states(log2_n, m, 0.3);
            assert!(
                lower <= s as f64 + 1e-6,
                "corollary ({lower}) exceeds the actual state count ({s})"
            );
        }
    }

    #[test]
    #[should_panic(expected = "0 < h < 1/2")]
    fn corollary_rejects_h_at_least_half() {
        let _ = corollary_4_4_min_states(100.0, 2, 0.5);
    }

    #[test]
    fn upper_bound_curves() {
        assert!((bej_upper_bound_states(log2_of_threshold(1 << 16)) - 4.0).abs() < 1e-9);
        assert_eq!(
            leaderless_upper_bound_states(log2_of_threshold(1 << 16)),
            16.0
        );
        assert_eq!(bej_upper_bound_states(0.5), 1.0);
        assert_eq!(leaderless_upper_bound_states(0.0), 1.0);
        // The gap of the paper: for huge n the lower bound stays far below the
        // BEJ upper bound only polynomially (exponent h < 1/2 vs 1).
        let log2_n = 1e12;
        let lower = corollary_4_4_min_states(log2_n, 2, 0.49);
        let upper = bej_upper_bound_states(log2_n);
        assert!(lower <= upper);
        assert!(lower >= upper.powf(0.3));
    }

    #[test]
    fn log2_of_threshold_handles_edge_cases() {
        assert_eq!(log2_of_threshold(0), 0.0);
        assert_eq!(log2_of_threshold(1), 0.0);
        assert_eq!(log2_of_threshold(1 << 20), 20.0);
    }
}
