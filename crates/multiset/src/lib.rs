//! Configurations and actions over finite state sets.
//!
//! In *State Complexity of Protocols With Leaders* (Leroux, PODC 2022) a
//! `P`-configuration is a mapping in `N^P` for a finite set of states `P`
//! (Section 2), and an action is a mapping in `Z^P` (Section 7). This crate
//! provides both as ordered sparse maps:
//!
//! * [`Multiset<P>`] — a configuration `ρ ∈ N^P`: agent counts per state, with
//!   the norms `|ρ|` ([`Multiset::total`]) and `‖ρ‖∞` ([`Multiset::sup_norm`]),
//!   restriction `ρ|_Q` ([`Multiset::restrict`]), component-wise order and
//!   arithmetic.
//! * [`SignedVec<P>`] — an action `a ∈ Z^P`, e.g. the displacement `Δ(t)` of a
//!   transition, with `‖a‖₁` ([`SignedVec::l1_norm`]) and application to
//!   configurations.
//!
//! Both types are generic in the place type `P` (any `Clone + Ord`), so the
//! same code serves protocol states, Petri-net places, and the control-state
//! constructions of Section 7.
//!
//! # Examples
//!
//! ```
//! use pp_multiset::Multiset;
//!
//! // The initial configuration ρ_L + n·i of Example 4.2 with n = 3:
//! let mut config: Multiset<&str> = Multiset::new();
//! config.add_to("i_bar", 3); // three leaders in state ī
//! config.add_to("i", 3);     // three input agents in state i
//! assert_eq!(config.total(), 6);
//! assert_eq!(config.sup_norm(), 3);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod multiset;
mod signed;

pub use crate::multiset::Multiset;
pub use crate::signed::SignedVec;
