//! The [`Multiset`] type: a configuration `ρ ∈ N^P`.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::ops::{Add, AddAssign, Mul};

/// A finite multiset over places of type `P`: a configuration `ρ ∈ N^P`.
///
/// Only places with a strictly positive count are stored, so equality,
/// ordering and hashing are independent of how the multiset was built. The
/// count type is `u64`; protocols and Petri nets in this suite never need more
/// agents per state than that.
///
/// # Examples
///
/// ```
/// use pp_multiset::Multiset;
///
/// let a = Multiset::from_pairs([("p", 2u64), ("q", 1)]);
/// let b = Multiset::unit("p");
/// assert!(b.le(&a));
/// assert_eq!(a.checked_sub(&b), Some(Multiset::from_pairs([("p", 1u64), ("q", 1)])));
/// assert_eq!((&a + &b).get(&"p"), 3);
/// ```
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Multiset<P: Ord> {
    counts: BTreeMap<P, u64>,
}

impl<P: Clone + Ord> Multiset<P> {
    /// The empty multiset (the zero configuration).
    #[must_use]
    pub fn new() -> Self {
        Multiset {
            counts: BTreeMap::new(),
        }
    }

    /// The multiset containing exactly one occurrence of `place`.
    ///
    /// This is the configuration written `p` (or `p|_P`) in the paper.
    #[must_use]
    pub fn unit(place: P) -> Self {
        let mut m = Multiset::new();
        m.add_to(place, 1);
        m
    }

    /// Builds a multiset from `(place, count)` pairs, summing duplicates.
    #[must_use]
    pub fn from_pairs<I: IntoIterator<Item = (P, u64)>>(pairs: I) -> Self {
        let mut m = Multiset::new();
        for (place, count) in pairs {
            m.add_to(place, count);
        }
        m
    }

    /// Number of occurrences of `place` (zero if absent).
    #[must_use]
    pub fn get(&self, place: &P) -> u64 {
        self.counts.get(place).copied().unwrap_or(0)
    }

    /// Returns `true` if `place` occurs at least once.
    #[must_use]
    pub fn contains(&self, place: &P) -> bool {
        self.counts.contains_key(place)
    }

    /// Sets the count of `place` to `count` (removing it when zero).
    pub fn set(&mut self, place: P, count: u64) {
        if count == 0 {
            self.counts.remove(&place);
        } else {
            self.counts.insert(place, count);
        }
    }

    /// Adds `count` occurrences of `place`.
    pub fn add_to(&mut self, place: P, count: u64) {
        if count == 0 {
            return;
        }
        *self.counts.entry(place).or_insert(0) += count;
    }

    /// Removes `count` occurrences of `place`.
    ///
    /// Returns `false` (leaving the multiset unchanged) if fewer than `count`
    /// occurrences are present.
    pub fn try_remove(&mut self, place: &P, count: u64) -> bool {
        if count == 0 {
            return true;
        }
        match self.counts.get_mut(place) {
            Some(existing) if *existing > count => {
                *existing -= count;
                true
            }
            Some(existing) if *existing == count => {
                self.counts.remove(place);
                true
            }
            _ => false,
        }
    }

    /// Returns `true` if the multiset is empty (the zero configuration).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.counts.is_empty()
    }

    /// Total number of agents `|ρ| = Σ_p ρ(p)`.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.counts.values().sum()
    }

    /// Maximum count `‖ρ‖∞ = max_p ρ(p)` (zero for the empty multiset).
    #[must_use]
    pub fn sup_norm(&self) -> u64 {
        self.counts.values().copied().max().unwrap_or(0)
    }

    /// Number of distinct places with a positive count.
    #[must_use]
    pub fn support_size(&self) -> usize {
        self.counts.len()
    }

    /// Iterates over the places with a positive count.
    pub fn support(&self) -> impl Iterator<Item = &P> {
        self.counts.keys()
    }

    /// The set of places with a positive count.
    #[must_use]
    pub fn support_set(&self) -> BTreeSet<P> {
        self.counts.keys().cloned().collect()
    }

    /// Iterates over `(place, count)` pairs in place order.
    pub fn iter(&self) -> impl Iterator<Item = (&P, u64)> {
        self.counts.iter().map(|(p, &c)| (p, c))
    }

    /// The restriction `ρ|_Q`: counts of places in `places`, zero elsewhere.
    ///
    /// Note that `places` need not be a subset of the support (Section 2 of
    /// the paper explicitly allows `Q ⊄ P`).
    #[must_use]
    pub fn restrict(&self, places: &BTreeSet<P>) -> Multiset<P> {
        Multiset {
            counts: self
                .counts
                .iter()
                .filter(|(p, _)| places.contains(p))
                .map(|(p, &c)| (p.clone(), c))
                .collect(),
        }
    }

    /// The restriction of `ρ` to the complement of `places`.
    #[must_use]
    pub fn restrict_complement(&self, places: &BTreeSet<P>) -> Multiset<P> {
        Multiset {
            counts: self
                .counts
                .iter()
                .filter(|(p, _)| !places.contains(p))
                .map(|(p, &c)| (p.clone(), c))
                .collect(),
        }
    }

    /// Component-wise order: `self ≤ other` iff `self(p) ≤ other(p)` for all `p`.
    #[must_use]
    pub fn le(&self, other: &Multiset<P>) -> bool {
        self.counts.iter().all(|(p, &c)| c <= other.get(p))
    }

    /// Checked component-wise difference `self - other`.
    ///
    /// Returns `None` unless `other ≤ self`.
    #[must_use]
    pub fn checked_sub(&self, other: &Multiset<P>) -> Option<Multiset<P>> {
        if !other.le(self) {
            return None;
        }
        let mut out = self.clone();
        for (p, c) in other.iter() {
            let ok = out.try_remove(p, c);
            debug_assert!(ok, "subtraction failed despite ordering check");
        }
        Some(out)
    }

    /// Component-wise difference saturating at zero.
    #[must_use]
    pub fn saturating_sub(&self, other: &Multiset<P>) -> Multiset<P> {
        let mut out = Multiset::new();
        for (p, c) in self.iter() {
            let o = other.get(p);
            if c > o {
                out.add_to(p.clone(), c - o);
            }
        }
        out
    }

    /// Scales every count by `factor`.
    #[must_use]
    pub fn scale(&self, factor: u64) -> Multiset<P> {
        if factor == 0 {
            return Multiset::new();
        }
        Multiset {
            counts: self
                .counts
                .iter()
                .map(|(p, &c)| (p.clone(), c * factor))
                .collect(),
        }
    }

    /// Component-wise maximum of two multisets.
    #[must_use]
    pub fn join(&self, other: &Multiset<P>) -> Multiset<P> {
        let mut out = self.clone();
        for (p, c) in other.iter() {
            if c > out.get(p) {
                out.set(p.clone(), c);
            }
        }
        out
    }

    /// Component-wise minimum of two multisets.
    #[must_use]
    pub fn meet(&self, other: &Multiset<P>) -> Multiset<P> {
        let mut out = Multiset::new();
        for (p, c) in self.iter() {
            let m = c.min(other.get(p));
            if m > 0 {
                out.add_to(p.clone(), m);
            }
        }
        out
    }

    /// Maps every place through `f`, summing counts of places that collide.
    #[must_use]
    pub fn map_places<Q: Clone + Ord, F: FnMut(&P) -> Q>(&self, mut f: F) -> Multiset<Q> {
        let mut out = Multiset::new();
        for (p, c) in self.iter() {
            out.add_to(f(p), c);
        }
        out
    }
}

impl<P: Clone + Ord> Add<&Multiset<P>> for &Multiset<P> {
    type Output = Multiset<P>;
    fn add(self, rhs: &Multiset<P>) -> Multiset<P> {
        let mut out = self.clone();
        for (p, c) in rhs.iter() {
            out.add_to(p.clone(), c);
        }
        out
    }
}

impl<P: Clone + Ord> Add for Multiset<P> {
    type Output = Multiset<P>;
    fn add(self, rhs: Multiset<P>) -> Multiset<P> {
        &self + &rhs
    }
}

impl<P: Clone + Ord> Add<&Multiset<P>> for Multiset<P> {
    type Output = Multiset<P>;
    fn add(self, rhs: &Multiset<P>) -> Multiset<P> {
        &self + rhs
    }
}

impl<P: Clone + Ord> AddAssign<&Multiset<P>> for Multiset<P> {
    fn add_assign(&mut self, rhs: &Multiset<P>) {
        for (p, c) in rhs.iter() {
            self.add_to(p.clone(), c);
        }
    }
}

impl<P: Clone + Ord> AddAssign for Multiset<P> {
    fn add_assign(&mut self, rhs: Multiset<P>) {
        *self += &rhs;
    }
}

impl<P: Clone + Ord> Mul<u64> for &Multiset<P> {
    type Output = Multiset<P>;
    fn mul(self, rhs: u64) -> Multiset<P> {
        self.scale(rhs)
    }
}

impl<P: Clone + Ord> Mul<u64> for Multiset<P> {
    type Output = Multiset<P>;
    fn mul(self, rhs: u64) -> Multiset<P> {
        self.scale(rhs)
    }
}

impl<P: Clone + Ord> FromIterator<(P, u64)> for Multiset<P> {
    fn from_iter<I: IntoIterator<Item = (P, u64)>>(iter: I) -> Self {
        Multiset::from_pairs(iter)
    }
}

impl<P: Clone + Ord> Extend<(P, u64)> for Multiset<P> {
    fn extend<I: IntoIterator<Item = (P, u64)>>(&mut self, iter: I) {
        for (p, c) in iter {
            self.add_to(p, c);
        }
    }
}

impl<P: Ord + fmt::Debug> fmt::Debug for Multiset<P> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.counts.is_empty() {
            return write!(f, "{{∅}}");
        }
        write!(f, "{{")?;
        for (i, (p, c)) in self.counts.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{p:?}:{c}")?;
        }
        write!(f, "}}")
    }
}

impl<P: Ord + fmt::Display> fmt::Display for Multiset<P> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.counts.is_empty() {
            return write!(f, "0");
        }
        for (i, (p, c)) in self.counts.iter().enumerate() {
            if i > 0 {
                write!(f, " + ")?;
            }
            if *c == 1 {
                write!(f, "{p}")?;
            } else {
                write!(f, "{c}·{p}")?;
            }
        }
        Ok(())
    }
}

#[cfg(feature = "serde")]
mod serde_impls {
    use super::*;
    use serde::{Deserialize, Deserializer, Serialize, Serializer};

    impl<P: Clone + Ord + Serialize> Serialize for Multiset<P> {
        fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
            self.counts.serialize(serializer)
        }
    }

    impl<'de, P: Clone + Ord + Deserialize<'de>> Deserialize<'de> for Multiset<P> {
        fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
            let counts = BTreeMap::<P, u64>::deserialize(deserializer)?;
            Ok(Multiset::from_pairs(counts))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn ms(pairs: &[(&'static str, u64)]) -> Multiset<&'static str> {
        Multiset::from_pairs(pairs.iter().copied())
    }

    #[test]
    fn zero_counts_are_not_stored() {
        let mut m = ms(&[("a", 3)]);
        m.add_to("b", 0);
        m.set("c", 0);
        assert_eq!(m.support_size(), 1);
        assert!(!m.contains(&"b"));
        assert_eq!(m, ms(&[("a", 3), ("b", 0)]));
    }

    #[test]
    fn unit_and_total() {
        let u = Multiset::unit("x");
        assert_eq!(u.total(), 1);
        assert_eq!(u.sup_norm(), 1);
        assert_eq!(u.get(&"x"), 1);
        assert_eq!(u.get(&"y"), 0);
    }

    #[test]
    fn add_and_scale() {
        let a = ms(&[("p", 2), ("q", 1)]);
        let b = ms(&[("q", 4), ("r", 1)]);
        let sum = &a + &b;
        assert_eq!(sum, ms(&[("p", 2), ("q", 5), ("r", 1)]));
        assert_eq!(sum.total(), 8);
        assert_eq!(a.scale(3), ms(&[("p", 6), ("q", 3)]));
        assert_eq!(a.scale(0), Multiset::new());
        assert_eq!(&a * 2, ms(&[("p", 4), ("q", 2)]));
    }

    #[test]
    fn try_remove_cases() {
        let mut m = ms(&[("p", 2)]);
        assert!(m.try_remove(&"p", 1));
        assert_eq!(m.get(&"p"), 1);
        assert!(!m.try_remove(&"p", 2));
        assert_eq!(m.get(&"p"), 1);
        assert!(m.try_remove(&"p", 1));
        assert!(m.is_empty());
        assert!(m.try_remove(&"p", 0));
        assert!(!m.try_remove(&"q", 1));
    }

    #[test]
    fn ordering_and_subtraction() {
        let small = ms(&[("p", 1), ("q", 1)]);
        let big = ms(&[("p", 3), ("q", 1), ("r", 2)]);
        assert!(small.le(&big));
        assert!(!big.le(&small));
        assert_eq!(big.checked_sub(&small), Some(ms(&[("p", 2), ("r", 2)])));
        assert_eq!(small.checked_sub(&big), None);
        assert_eq!(small.saturating_sub(&big), Multiset::new());
        assert_eq!(big.saturating_sub(&small), ms(&[("p", 2), ("r", 2)]));
    }

    #[test]
    fn componentwise_order_is_a_partial_order() {
        // `le` is the paper's component-wise order; the derived `Ord` is only
        // a structural total order used for indexing and must not be confused
        // with it.
        let a = ms(&[("p", 2)]);
        let b = ms(&[("q", 2)]);
        assert!(!a.le(&b));
        assert!(!b.le(&a));
        assert!(a.le(&a));
        assert!(Multiset::new().le(&a));
        // Structural order is still total (needed for BTree indexing).
        assert_ne!(a.cmp(&b), std::cmp::Ordering::Equal);
    }

    #[test]
    fn restriction() {
        let m = ms(&[("p", 2), ("q", 3), ("r", 1)]);
        let q_set: BTreeSet<&str> = ["q", "z"].into_iter().collect();
        assert_eq!(m.restrict(&q_set), ms(&[("q", 3)]));
        assert_eq!(m.restrict_complement(&q_set), ms(&[("p", 2), ("r", 1)]));
        // Restricting to a superset of the support is the identity.
        let all: BTreeSet<&str> = ["p", "q", "r", "s"].into_iter().collect();
        assert_eq!(m.restrict(&all), m);
    }

    #[test]
    fn join_meet() {
        let a = ms(&[("p", 2), ("q", 1)]);
        let b = ms(&[("p", 1), ("r", 5)]);
        assert_eq!(a.join(&b), ms(&[("p", 2), ("q", 1), ("r", 5)]));
        assert_eq!(a.meet(&b), ms(&[("p", 1)]));
        assert!(a.meet(&b).le(&a));
        assert!(a.le(&a.join(&b)));
    }

    #[test]
    fn map_places_merges_collisions() {
        let m = ms(&[("p1", 2), ("p2", 3), ("q", 1)]);
        let merged = m.map_places(|p| if p.starts_with('p') { "p" } else { "other" });
        assert_eq!(merged, ms(&[("p", 5), ("other", 1)]));
    }

    #[test]
    fn display_and_debug() {
        assert_eq!(ms(&[]).to_string(), "0");
        assert_eq!(ms(&[("p", 1)]).to_string(), "p");
        assert_eq!(ms(&[("p", 2), ("q", 1)]).to_string(), "2·p + q");
        assert!(!format!("{:?}", ms(&[])).is_empty());
        assert_eq!(format!("{:?}", ms(&[("p", 1)])), "{\"p\":1}");
    }

    #[test]
    fn from_iterator_and_extend() {
        let m: Multiset<&str> = [("a", 1u64), ("b", 2), ("a", 3)].into_iter().collect();
        assert_eq!(m, ms(&[("a", 4), ("b", 2)]));
        let mut n = ms(&[("a", 1)]);
        n.extend([("a", 1u64), ("c", 2)]);
        assert_eq!(n, ms(&[("a", 2), ("c", 2)]));
    }

    fn arb_multiset() -> impl Strategy<Value = Multiset<u8>> {
        proptest::collection::btree_map(0u8..6, 0u64..50, 0..6).prop_map(Multiset::from_pairs)
    }

    proptest! {
        #[test]
        fn addition_commutative(a in arb_multiset(), b in arb_multiset()) {
            prop_assert_eq!(&a + &b, &b + &a);
        }

        #[test]
        fn addition_total_is_sum(a in arb_multiset(), b in arb_multiset()) {
            prop_assert_eq!((&a + &b).total(), a.total() + b.total());
        }

        #[test]
        fn sub_inverts_add(a in arb_multiset(), b in arb_multiset()) {
            let sum = &a + &b;
            prop_assert_eq!(sum.checked_sub(&b), Some(a.clone()));
            prop_assert_eq!(sum.checked_sub(&a), Some(b));
        }

        #[test]
        fn le_is_reflexive_and_monotone(a in arb_multiset(), b in arb_multiset()) {
            prop_assert!(a.le(&a));
            prop_assert!(a.le(&(&a + &b)));
        }

        #[test]
        fn restrict_splits_total(a in arb_multiset(), places in proptest::collection::btree_set(0u8..6, 0..6)) {
            let inside = a.restrict(&places);
            let outside = a.restrict_complement(&places);
            prop_assert_eq!(&inside + &outside, a.clone());
            prop_assert_eq!(inside.total() + outside.total(), a.total());
        }

        #[test]
        fn join_is_least_upper_bound(a in arb_multiset(), b in arb_multiset()) {
            let j = a.join(&b);
            prop_assert!(a.le(&j));
            prop_assert!(b.le(&j));
            // The join never exceeds the sum.
            prop_assert!(j.le(&(&a + &b)));
        }

        #[test]
        fn meet_is_greatest_lower_bound(a in arb_multiset(), b in arb_multiset()) {
            let m = a.meet(&b);
            prop_assert!(m.le(&a));
            prop_assert!(m.le(&b));
        }

        #[test]
        fn scale_matches_repeated_addition(a in arb_multiset(), k in 0u64..5) {
            let mut acc = Multiset::new();
            for _ in 0..k {
                acc += &a;
            }
            prop_assert_eq!(a.scale(k), acc);
        }
    }
}
