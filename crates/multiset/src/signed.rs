//! The [`SignedVec`] type: an action `a ∈ Z^P` (Section 7 of the paper).

use crate::Multiset;
use std::collections::BTreeSet;
use std::fmt;
use std::ops::{Add, AddAssign, Mul, Neg, Sub};

/// A finitely-supported integer vector over places of type `P`.
///
/// Actions are used for transition displacements `Δ(t) = β_t - α_t`, path and
/// multicycle displacements, and the linear system of Lemma 7.3. Only places
/// with a non-zero coefficient are stored.
///
/// # Examples
///
/// ```
/// use pp_multiset::{Multiset, SignedVec};
///
/// let pre = Multiset::from_pairs([("i", 1u64), ("i_bar", 1)]);
/// let post = Multiset::from_pairs([("p", 1u64), ("q", 1)]);
/// let delta = SignedVec::displacement(&pre, &post);
/// assert_eq!(delta.get(&"i"), -1);
/// assert_eq!(delta.get(&"p"), 1);
/// assert_eq!(delta.l1_norm(), 4);
/// ```
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SignedVec<P: Ord> {
    coeffs: std::collections::BTreeMap<P, i64>,
}

impl<P: Clone + Ord> SignedVec<P> {
    /// The zero vector.
    #[must_use]
    pub fn new() -> Self {
        SignedVec {
            coeffs: std::collections::BTreeMap::new(),
        }
    }

    /// Builds a vector from `(place, coefficient)` pairs, summing duplicates.
    #[must_use]
    pub fn from_pairs<I: IntoIterator<Item = (P, i64)>>(pairs: I) -> Self {
        let mut v = SignedVec::new();
        for (p, c) in pairs {
            v.add_to(p, c);
        }
        v
    }

    /// The displacement `post - pre` of a transition `(pre, post)`.
    #[must_use]
    pub fn displacement(pre: &Multiset<P>, post: &Multiset<P>) -> Self {
        let mut v = SignedVec::new();
        for (p, c) in post.iter() {
            v.add_to(p.clone(), i64::try_from(c).expect("count fits i64"));
        }
        for (p, c) in pre.iter() {
            v.add_to(p.clone(), -i64::try_from(c).expect("count fits i64"));
        }
        v
    }

    /// Converts a configuration into the corresponding non-negative vector.
    #[must_use]
    pub fn from_multiset(m: &Multiset<P>) -> Self {
        SignedVec::from_pairs(
            m.iter()
                .map(|(p, c)| (p.clone(), i64::try_from(c).expect("count fits i64"))),
        )
    }

    /// Coefficient of `place` (zero if absent).
    #[must_use]
    pub fn get(&self, place: &P) -> i64 {
        self.coeffs.get(place).copied().unwrap_or(0)
    }

    /// Adds `delta` to the coefficient of `place`.
    pub fn add_to(&mut self, place: P, delta: i64) {
        if delta == 0 {
            return;
        }
        let new = self.get(&place) + delta;
        if new == 0 {
            self.coeffs.remove(&place);
        } else {
            self.coeffs.insert(place, new);
        }
    }

    /// Sets the coefficient of `place`.
    pub fn set(&mut self, place: P, value: i64) {
        if value == 0 {
            self.coeffs.remove(&place);
        } else {
            self.coeffs.insert(place, value);
        }
    }

    /// Returns `true` if every coefficient is zero.
    #[must_use]
    pub fn is_zero(&self) -> bool {
        self.coeffs.is_empty()
    }

    /// Iterates over `(place, coefficient)` pairs with non-zero coefficients.
    pub fn iter(&self) -> impl Iterator<Item = (&P, i64)> {
        self.coeffs.iter().map(|(p, &c)| (p, c))
    }

    /// The support of the vector (places with non-zero coefficients).
    #[must_use]
    pub fn support_set(&self) -> BTreeSet<P> {
        self.coeffs.keys().cloned().collect()
    }

    /// The `ℓ₁` norm `‖a‖₁ = Σ_p |a(p)|`.
    #[must_use]
    pub fn l1_norm(&self) -> u64 {
        self.coeffs.values().map(|c| c.unsigned_abs()).sum()
    }

    /// The `ℓ∞` norm `max_p |a(p)|`.
    #[must_use]
    pub fn sup_norm(&self) -> u64 {
        self.coeffs
            .values()
            .map(|c| c.unsigned_abs())
            .max()
            .unwrap_or(0)
    }

    /// The restriction `a|_Q` to the places in `places`.
    #[must_use]
    pub fn restrict(&self, places: &BTreeSet<P>) -> SignedVec<P> {
        SignedVec {
            coeffs: self
                .coeffs
                .iter()
                .filter(|(p, _)| places.contains(p))
                .map(|(p, &c)| (p.clone(), c))
                .collect(),
        }
    }

    /// The restriction of `a` to the complement of `places`.
    #[must_use]
    pub fn restrict_complement(&self, places: &BTreeSet<P>) -> SignedVec<P> {
        SignedVec {
            coeffs: self
                .coeffs
                .iter()
                .filter(|(p, _)| !places.contains(p))
                .map(|(p, &c)| (p.clone(), c))
                .collect(),
        }
    }

    /// Returns `true` if every coefficient is non-negative.
    #[must_use]
    pub fn is_non_negative(&self) -> bool {
        self.coeffs.values().all(|&c| c >= 0)
    }

    /// Converts into a configuration if every coefficient is non-negative.
    #[must_use]
    pub fn to_multiset(&self) -> Option<Multiset<P>> {
        if !self.is_non_negative() {
            return None;
        }
        Some(Multiset::from_pairs(
            self.coeffs.iter().map(|(p, &c)| (p.clone(), c as u64)),
        ))
    }

    /// Applies the action to a configuration: `m + a`, checked to stay in `N^P`.
    ///
    /// Returns `None` if some coordinate would become negative.
    #[must_use]
    pub fn apply_to(&self, m: &Multiset<P>) -> Option<Multiset<P>> {
        let mut out = m.clone();
        for (p, c) in self.iter() {
            if c >= 0 {
                out.add_to(p.clone(), c as u64);
            } else if !out.try_remove(p, c.unsigned_abs()) {
                return None;
            }
        }
        Some(out)
    }

    /// The positive part of the vector as a configuration.
    #[must_use]
    pub fn positive_part(&self) -> Multiset<P> {
        Multiset::from_pairs(
            self.coeffs
                .iter()
                .filter(|(_, &c)| c > 0)
                .map(|(p, &c)| (p.clone(), c as u64)),
        )
    }

    /// The negative part of the vector (negated) as a configuration.
    #[must_use]
    pub fn negative_part(&self) -> Multiset<P> {
        Multiset::from_pairs(
            self.coeffs
                .iter()
                .filter(|(_, &c)| c < 0)
                .map(|(p, &c)| (p.clone(), c.unsigned_abs())),
        )
    }
}

impl<P: Clone + Ord> Add<&SignedVec<P>> for &SignedVec<P> {
    type Output = SignedVec<P>;
    fn add(self, rhs: &SignedVec<P>) -> SignedVec<P> {
        let mut out = self.clone();
        for (p, c) in rhs.iter() {
            out.add_to(p.clone(), c);
        }
        out
    }
}

impl<P: Clone + Ord> Add for SignedVec<P> {
    type Output = SignedVec<P>;
    fn add(self, rhs: SignedVec<P>) -> SignedVec<P> {
        &self + &rhs
    }
}

impl<P: Clone + Ord> AddAssign<&SignedVec<P>> for SignedVec<P> {
    fn add_assign(&mut self, rhs: &SignedVec<P>) {
        for (p, c) in rhs.iter() {
            self.add_to(p.clone(), c);
        }
    }
}

impl<P: Clone + Ord> Sub<&SignedVec<P>> for &SignedVec<P> {
    type Output = SignedVec<P>;
    fn sub(self, rhs: &SignedVec<P>) -> SignedVec<P> {
        let mut out = self.clone();
        for (p, c) in rhs.iter() {
            out.add_to(p.clone(), -c);
        }
        out
    }
}

impl<P: Clone + Ord> Sub for SignedVec<P> {
    type Output = SignedVec<P>;
    fn sub(self, rhs: SignedVec<P>) -> SignedVec<P> {
        &self - &rhs
    }
}

impl<P: Clone + Ord> Neg for &SignedVec<P> {
    type Output = SignedVec<P>;
    fn neg(self) -> SignedVec<P> {
        SignedVec {
            coeffs: self.coeffs.iter().map(|(p, &c)| (p.clone(), -c)).collect(),
        }
    }
}

impl<P: Clone + Ord> Neg for SignedVec<P> {
    type Output = SignedVec<P>;
    fn neg(self) -> SignedVec<P> {
        -&self
    }
}

impl<P: Clone + Ord> Mul<i64> for &SignedVec<P> {
    type Output = SignedVec<P>;
    fn mul(self, rhs: i64) -> SignedVec<P> {
        if rhs == 0 {
            return SignedVec::new();
        }
        SignedVec {
            coeffs: self
                .coeffs
                .iter()
                .map(|(p, &c)| (p.clone(), c * rhs))
                .collect(),
        }
    }
}

impl<P: Clone + Ord> Mul<i64> for SignedVec<P> {
    type Output = SignedVec<P>;
    fn mul(self, rhs: i64) -> SignedVec<P> {
        &self * rhs
    }
}

impl<P: Clone + Ord> FromIterator<(P, i64)> for SignedVec<P> {
    fn from_iter<I: IntoIterator<Item = (P, i64)>>(iter: I) -> Self {
        SignedVec::from_pairs(iter)
    }
}

impl<P: Ord + fmt::Debug> fmt::Debug for SignedVec<P> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.coeffs.is_empty() {
            return write!(f, "[0]");
        }
        write!(f, "[")?;
        for (i, (p, c)) in self.coeffs.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{p:?}:{c:+}")?;
        }
        write!(f, "]")
    }
}

impl<P: Ord + fmt::Display> fmt::Display for SignedVec<P> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.coeffs.is_empty() {
            return write!(f, "0");
        }
        for (i, (p, c)) in self.coeffs.iter().enumerate() {
            if i > 0 {
                write!(f, " ")?;
            }
            write!(f, "{c:+}·{p}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn sv(pairs: &[(&'static str, i64)]) -> SignedVec<&'static str> {
        SignedVec::from_pairs(pairs.iter().copied())
    }

    fn ms(pairs: &[(&'static str, u64)]) -> Multiset<&'static str> {
        Multiset::from_pairs(pairs.iter().copied())
    }

    #[test]
    fn zero_entries_are_not_stored() {
        let mut v = sv(&[("a", 2)]);
        v.add_to("a", -2);
        assert!(v.is_zero());
        assert_eq!(v, SignedVec::new());
        v.set("b", 0);
        assert!(v.is_zero());
    }

    #[test]
    fn displacement_of_transition() {
        // Transition t = (i + ī, p + q) from Example 4.2.
        let pre = ms(&[("i", 1), ("i_bar", 1)]);
        let post = ms(&[("p", 1), ("q", 1)]);
        let d = SignedVec::displacement(&pre, &post);
        assert_eq!(d, sv(&[("i", -1), ("i_bar", -1), ("p", 1), ("q", 1)]));
        assert_eq!(d.l1_norm(), 4);
        assert_eq!(d.sup_norm(), 1);
    }

    #[test]
    fn displacement_cancels_shared_places() {
        // t_p = (p̄ + i, p + i): the i agent is both consumed and produced.
        let pre = ms(&[("p_bar", 1), ("i", 1)]);
        let post = ms(&[("p", 1), ("i", 1)]);
        let d = SignedVec::displacement(&pre, &post);
        assert_eq!(d, sv(&[("p_bar", -1), ("p", 1)]));
    }

    #[test]
    fn apply_to_checked() {
        let d = sv(&[("p", -1), ("q", 2)]);
        assert_eq!(d.apply_to(&ms(&[("p", 1)])), Some(ms(&[("q", 2)])));
        assert_eq!(d.apply_to(&ms(&[("q", 1)])), None);
    }

    #[test]
    #[allow(clippy::erasing_op)] // scaling by zero is the property under test
    fn arithmetic_operators() {
        let a = sv(&[("p", 2), ("q", -1)]);
        let b = sv(&[("p", -2), ("r", 3)]);
        assert_eq!(&a + &b, sv(&[("q", -1), ("r", 3)]));
        assert_eq!(&a - &a, SignedVec::new());
        assert_eq!(-&a, sv(&[("p", -2), ("q", 1)]));
        assert_eq!(&a * 3, sv(&[("p", 6), ("q", -3)]));
        assert_eq!(&a * 0, SignedVec::new());
    }

    #[test]
    fn positive_and_negative_parts() {
        let a = sv(&[("p", 2), ("q", -3), ("r", 1)]);
        assert_eq!(a.positive_part(), ms(&[("p", 2), ("r", 1)]));
        assert_eq!(a.negative_part(), ms(&[("q", 3)]));
        assert_eq!(
            SignedVec::displacement(&a.negative_part(), &a.positive_part()),
            a
        );
    }

    #[test]
    fn restriction() {
        let a = sv(&[("p", 2), ("q", -3)]);
        let q_only: BTreeSet<&str> = ["q"].into_iter().collect();
        assert_eq!(a.restrict(&q_only), sv(&[("q", -3)]));
        assert_eq!(a.restrict_complement(&q_only), sv(&[("p", 2)]));
    }

    #[test]
    fn conversion_to_multiset() {
        assert_eq!(sv(&[("p", 2)]).to_multiset(), Some(ms(&[("p", 2)])));
        assert_eq!(sv(&[("p", -2)]).to_multiset(), None);
        assert_eq!(SignedVec::from_multiset(&ms(&[("p", 2)])), sv(&[("p", 2)]));
    }

    #[test]
    fn display_and_debug() {
        assert_eq!(sv(&[]).to_string(), "0");
        assert_eq!(sv(&[("p", 1), ("q", -2)]).to_string(), "+1·p -2·q");
        assert!(!format!("{:?}", sv(&[])).is_empty());
    }

    fn arb_signed() -> impl Strategy<Value = SignedVec<u8>> {
        proptest::collection::btree_map(0u8..6, -20i64..20, 0..6).prop_map(SignedVec::from_pairs)
    }

    fn arb_multiset() -> impl Strategy<Value = Multiset<u8>> {
        proptest::collection::btree_map(0u8..6, 0u64..50, 0..6).prop_map(Multiset::from_pairs)
    }

    proptest! {
        #[test]
        fn addition_commutative(a in arb_signed(), b in arb_signed()) {
            prop_assert_eq!(&a + &b, &b + &a);
        }

        #[test]
        fn sub_then_add_roundtrip(a in arb_signed(), b in arb_signed()) {
            prop_assert_eq!(&(&a - &b) + &b, a);
        }

        #[test]
        fn negation_is_involutive(a in arb_signed()) {
            prop_assert_eq!(-(-&a), a);
        }

        #[test]
        fn l1_norm_triangle_inequality(a in arb_signed(), b in arb_signed()) {
            prop_assert!((&a + &b).l1_norm() <= a.l1_norm() + b.l1_norm());
        }

        #[test]
        fn apply_displacement_matches_parts(a in arb_signed(), m in arb_multiset()) {
            // m + a is defined iff the negative part fits inside m + positive part... more
            // precisely: applying succeeds iff negative_part ≤ m + positive additions on
            // disjoint places; we simply check consistency when it succeeds.
            if let Some(result) = a.apply_to(&m) {
                let expected = SignedVec::from_multiset(&m) + a.clone();
                prop_assert_eq!(SignedVec::from_multiset(&result), expected);
            }
        }

        #[test]
        fn displacement_roundtrip(pre in arb_multiset(), post in arb_multiset()) {
            let d = SignedVec::displacement(&pre, &post);
            // Applying d to pre always yields post when pre ≥ its own negative part.
            prop_assert_eq!(d.apply_to(&pre), Some(post));
        }
    }
}
