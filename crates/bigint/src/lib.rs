//! Arbitrary-precision natural numbers for the state-complexity suite.
//!
//! The bounds appearing in *State Complexity of Protocols With Leaders*
//! (Leroux, PODC 2022) are doubly (and sometimes triply) exponential in the
//! number of states of a protocol: Theorem 4.3 bounds the threshold `n` of a
//! counting predicate by `(4 + 4·width + 2·leaders)^(|P|(|P|+2)²)`, Theorem 6.1
//! bounds bottom witnesses by `(4 + 4‖T‖ + 2‖ρ‖)^(dᵈ(1+(2+dᵈ)ᵈ+1))`, and the
//! Section 8 constants `b, h, k, a, ℓ, r` stack further exponentials on top.
//! None of these values fit in machine integers, so the suite carries its own
//! small, dependency-free big-natural implementation rather than pulling in an
//! external crate.
//!
//! The central type is [`Nat`], an unsigned arbitrary-precision integer with
//! the usual arithmetic (`+`, `-` via [`Nat::checked_sub`], `*`, integer
//! division, exponentiation), ordering, decimal formatting/parsing and cheap
//! approximations ([`Nat::bits`], [`Nat::approx_log2`]) used by the table
//! generators to report magnitudes of astronomically large bounds.
//!
//! # Examples
//!
//! ```
//! use pp_bigint::Nat;
//!
//! // The Theorem 4.3 exponent for a 6-state protocol: 6 * (6+2)^2 = 384.
//! let base = Nat::from(10u64);
//! let bound = base.pow(384);
//! assert_eq!(bound.digits(), 385);
//! assert!(bound > Nat::from(u128::MAX));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod convert;
mod error;
mod fmt;
mod nat;
mod ops;
mod power;

pub use error::{ParseNatError, TryFromNatError};
pub use nat::Nat;
pub use power::PowerBound;
