//! Conversions between [`Nat`] and machine integers.

use crate::error::TryFromNatError;
use crate::Nat;

impl From<u8> for Nat {
    fn from(v: u8) -> Self {
        Nat::from(u64::from(v))
    }
}

impl From<u16> for Nat {
    fn from(v: u16) -> Self {
        Nat::from(u64::from(v))
    }
}

impl From<u32> for Nat {
    fn from(v: u32) -> Self {
        Nat::from(u64::from(v))
    }
}

impl From<u64> for Nat {
    fn from(v: u64) -> Self {
        if v == 0 {
            Nat::zero()
        } else {
            Nat { limbs: vec![v] }
        }
    }
}

impl From<usize> for Nat {
    fn from(v: usize) -> Self {
        Nat::from(v as u64)
    }
}

impl From<u128> for Nat {
    fn from(v: u128) -> Self {
        Nat::from_limbs(vec![v as u64, (v >> 64) as u64])
    }
}

impl TryFrom<&Nat> for u64 {
    type Error = TryFromNatError;
    fn try_from(value: &Nat) -> Result<Self, Self::Error> {
        match value.limbs.len() {
            0 => Ok(0),
            1 => Ok(value.limbs[0]),
            _ => Err(TryFromNatError::new(value.bits(), 64)),
        }
    }
}

impl TryFrom<Nat> for u64 {
    type Error = TryFromNatError;
    fn try_from(value: Nat) -> Result<Self, Self::Error> {
        u64::try_from(&value)
    }
}

impl TryFrom<&Nat> for u128 {
    type Error = TryFromNatError;
    fn try_from(value: &Nat) -> Result<Self, Self::Error> {
        match value.limbs.len() {
            0 => Ok(0),
            1 => Ok(u128::from(value.limbs[0])),
            2 => Ok(u128::from(value.limbs[0]) | (u128::from(value.limbs[1]) << 64)),
            _ => Err(TryFromNatError::new(value.bits(), 128)),
        }
    }
}

impl TryFrom<Nat> for u128 {
    type Error = TryFromNatError;
    fn try_from(value: Nat) -> Result<Self, Self::Error> {
        u128::try_from(&value)
    }
}

impl TryFrom<&Nat> for usize {
    type Error = TryFromNatError;
    fn try_from(value: &Nat) -> Result<Self, Self::Error> {
        let v = u64::try_from(value)?;
        usize::try_from(v).map_err(|_| TryFromNatError::new(value.bits(), usize::BITS as u64))
    }
}

impl Nat {
    /// Converts to `u64`, saturating at `u64::MAX` when the value is too big.
    ///
    /// ```
    /// # use pp_bigint::Nat;
    /// assert_eq!(Nat::from(7u64).saturating_u64(), 7);
    /// assert_eq!(Nat::from(u128::MAX).saturating_u64(), u64::MAX);
    /// ```
    #[must_use]
    pub fn saturating_u64(&self) -> u64 {
        u64::try_from(self).unwrap_or(u64::MAX)
    }

    /// Converts to `u128`, saturating at `u128::MAX` when the value is too big.
    #[must_use]
    pub fn saturating_u128(&self) -> u128 {
        u128::try_from(self).unwrap_or(u128::MAX)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_small_integer_types() {
        assert_eq!(Nat::from(7u8), Nat::from(7u64));
        assert_eq!(Nat::from(7u16), Nat::from(7u64));
        assert_eq!(Nat::from(7u32), Nat::from(7u64));
        assert_eq!(Nat::from(7usize), Nat::from(7u64));
        assert_eq!(Nat::from(0u128), Nat::zero());
    }

    #[test]
    fn u128_roundtrip() {
        for v in [
            0u128,
            1,
            u128::from(u64::MAX),
            u128::from(u64::MAX) + 1,
            u128::MAX,
        ] {
            assert_eq!(u128::try_from(&Nat::from(v)).unwrap(), v);
        }
    }

    #[test]
    fn u64_roundtrip_and_overflow() {
        assert_eq!(u64::try_from(Nat::from(u64::MAX)).unwrap(), u64::MAX);
        let too_big = Nat::from(u128::from(u64::MAX) + 1);
        assert!(u64::try_from(&too_big).is_err());
        let err = u64::try_from(&too_big).unwrap_err();
        assert!(err.to_string().contains("64"));
    }

    #[test]
    fn usize_conversion() {
        assert_eq!(usize::try_from(&Nat::from(12u64)).unwrap(), 12usize);
        assert!(usize::try_from(&Nat::from(2u64).pow(200)).is_err());
    }

    #[test]
    fn saturating_conversions() {
        let huge = Nat::from(3u64).pow(300);
        assert_eq!(huge.saturating_u64(), u64::MAX);
        assert_eq!(huge.saturating_u128(), u128::MAX);
        assert_eq!(Nat::from(9u64).saturating_u64(), 9);
        assert_eq!(Nat::from(9u64).saturating_u128(), 9);
    }
}
