//! Error types for [`Nat`](crate::Nat) parsing and conversions.

use std::error::Error;
use std::fmt;

/// Error returned when parsing a [`Nat`](crate::Nat) from a string fails.
///
/// ```
/// # use pp_bigint::Nat;
/// assert!("12x34".parse::<Nat>().is_err());
/// assert!("".parse::<Nat>().is_err());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseNatError {
    kind: ParseNatErrorKind,
}

#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum ParseNatErrorKind {
    Empty,
    InvalidDigit { ch: char, position: usize },
}

impl ParseNatError {
    pub(crate) fn empty() -> Self {
        ParseNatError {
            kind: ParseNatErrorKind::Empty,
        }
    }

    pub(crate) fn invalid_digit(ch: char, position: usize) -> Self {
        ParseNatError {
            kind: ParseNatErrorKind::InvalidDigit { ch, position },
        }
    }
}

impl fmt::Display for ParseNatError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.kind {
            ParseNatErrorKind::Empty => write!(f, "cannot parse natural number from empty string"),
            ParseNatErrorKind::InvalidDigit { ch, position } => write!(
                f,
                "invalid digit {ch:?} at position {position} in natural number literal"
            ),
        }
    }
}

impl Error for ParseNatError {}

/// Error returned when converting a [`Nat`](crate::Nat) into a machine integer
/// that is too small to hold the value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TryFromNatError {
    bits_required: u64,
    bits_available: u64,
}

impl TryFromNatError {
    pub(crate) fn new(bits_required: u64, bits_available: u64) -> Self {
        TryFromNatError {
            bits_required,
            bits_available,
        }
    }

    /// Number of bits of the value that failed to convert.
    #[must_use]
    pub fn bits_required(&self) -> u64 {
        self.bits_required
    }

    /// Width in bits of the target integer type.
    #[must_use]
    pub fn bits_available(&self) -> u64 {
        self.bits_available
    }
}

impl fmt::Display for TryFromNatError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "value needs {} bits but the target integer type only has {}",
            self.bits_required, self.bits_available
        )
    }
}

impl Error for TryFromNatError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = ParseNatError::invalid_digit('x', 3);
        assert!(e.to_string().contains("position 3"));
        let e = ParseNatError::empty();
        assert!(e.to_string().contains("empty"));
        let e = TryFromNatError::new(200, 64);
        assert_eq!(e.bits_required(), 200);
        assert_eq!(e.bits_available(), 64);
        assert!(e.to_string().contains("200"));
    }
}
