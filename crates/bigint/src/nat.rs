//! The [`Nat`] type: an arbitrary-precision natural number.

/// An arbitrary-precision natural number (unsigned integer).
///
/// Internally the value is stored as little-endian base-2⁶⁴ limbs with no
/// trailing zero limbs; the zero value is represented by an empty limb vector.
/// All operations preserve this normalization invariant.
///
/// `Nat` implements the arithmetic operators `+`, `*`, `/`, `%`, `<<`, and the
/// assign variants, as well as total ordering and decimal
/// formatting/parsing. Subtraction is only available through
/// [`Nat::checked_sub`] / [`Nat::saturating_sub`] because naturals are not
/// closed under subtraction.
///
/// # Examples
///
/// ```
/// use pp_bigint::Nat;
///
/// let a = Nat::from(2u64).pow(130);
/// let b = Nat::from(3u64).pow(83);
/// assert!(a < b);
/// assert_eq!((&a * &b) / &a, b);
/// ```
#[derive(Clone, PartialEq, Eq, Hash, Default)]
pub struct Nat {
    /// Little-endian limbs; no trailing zeros (zero is the empty vector).
    pub(crate) limbs: Vec<u64>,
}

impl Nat {
    /// The value `0`.
    ///
    /// ```
    /// # use pp_bigint::Nat;
    /// assert!(Nat::zero().is_zero());
    /// ```
    #[must_use]
    pub fn zero() -> Self {
        Nat { limbs: Vec::new() }
    }

    /// The value `1`.
    ///
    /// ```
    /// # use pp_bigint::Nat;
    /// assert_eq!(Nat::one(), Nat::from(1u64));
    /// ```
    #[must_use]
    pub fn one() -> Self {
        Nat { limbs: vec![1] }
    }

    /// Returns `true` if the value is `0`.
    #[must_use]
    pub fn is_zero(&self) -> bool {
        self.limbs.is_empty()
    }

    /// Returns `true` if the value is `1`.
    #[must_use]
    pub fn is_one(&self) -> bool {
        self.limbs.len() == 1 && self.limbs[0] == 1
    }

    /// Removes trailing zero limbs, restoring the normalization invariant.
    pub(crate) fn normalize(&mut self) {
        while self.limbs.last() == Some(&0) {
            self.limbs.pop();
        }
    }

    /// Constructs a value from little-endian limbs (normalizing them).
    pub(crate) fn from_limbs(limbs: Vec<u64>) -> Self {
        let mut n = Nat { limbs };
        n.normalize();
        n
    }

    /// Number of significant bits (`0` for the value zero).
    ///
    /// ```
    /// # use pp_bigint::Nat;
    /// assert_eq!(Nat::zero().bits(), 0);
    /// assert_eq!(Nat::from(1u64).bits(), 1);
    /// assert_eq!(Nat::from(255u64).bits(), 8);
    /// assert_eq!(Nat::from(256u64).bits(), 9);
    /// ```
    #[must_use]
    pub fn bits(&self) -> u64 {
        match self.limbs.last() {
            None => 0,
            Some(&top) => {
                (self.limbs.len() as u64 - 1) * 64 + (64 - u64::from(top.leading_zeros()))
            }
        }
    }

    /// Value of bit `i` (little-endian bit positions).
    #[must_use]
    pub fn bit(&self, i: u64) -> bool {
        let limb = (i / 64) as usize;
        if limb >= self.limbs.len() {
            return false;
        }
        (self.limbs[limb] >> (i % 64)) & 1 == 1
    }

    /// Base-2 logarithm as a floating-point approximation.
    ///
    /// Returns `f64::NEG_INFINITY` for zero. The result is accurate to well
    /// below one part in 2⁵², which is plenty for reporting magnitudes of
    /// doubly-exponential bounds.
    ///
    /// ```
    /// # use pp_bigint::Nat;
    /// let x = Nat::from(2u64).pow(1000);
    /// assert!((x.approx_log2() - 1000.0).abs() < 1e-9);
    /// ```
    #[must_use]
    pub fn approx_log2(&self) -> f64 {
        if self.is_zero() {
            return f64::NEG_INFINITY;
        }
        let bits = self.bits();
        // Take the top (up to) 128 bits as a mantissa.
        let take = bits.min(128);
        let shift = bits - take;
        let mantissa = self.shr_bits(shift).to_u128_wrapping();
        (mantissa as f64).log2() + shift as f64
    }

    /// Base-10 logarithm as a floating-point approximation.
    ///
    /// Returns `f64::NEG_INFINITY` for zero.
    #[must_use]
    pub fn approx_log10(&self) -> f64 {
        self.approx_log2() * std::f64::consts::LOG10_2
    }

    /// Number of decimal digits of the value (`1` for zero).
    ///
    /// ```
    /// # use pp_bigint::Nat;
    /// assert_eq!(Nat::zero().digits(), 1);
    /// assert_eq!(Nat::from(999u64).digits(), 3);
    /// assert_eq!(Nat::from(1000u64).digits(), 4);
    /// ```
    #[must_use]
    pub fn digits(&self) -> usize {
        if self.is_zero() {
            return 1;
        }
        self.to_decimal_string().len()
    }

    /// Lossy conversion to `f64` (`f64::INFINITY` when the value exceeds the
    /// `f64` range).
    #[must_use]
    pub fn to_f64(&self) -> f64 {
        if self.is_zero() {
            return 0.0;
        }
        let bits = self.bits();
        if bits > 1024 {
            return f64::INFINITY;
        }
        if bits <= 128 {
            return self.to_u128_wrapping() as f64;
        }
        let shift = bits - 128;
        (self.shr_bits(shift).to_u128_wrapping() as f64) * (shift as f64).exp2()
    }

    /// Truncating conversion keeping the low 128 bits.
    pub(crate) fn to_u128_wrapping(&self) -> u128 {
        let lo = self.limbs.first().copied().unwrap_or(0) as u128;
        let hi = self.limbs.get(1).copied().unwrap_or(0) as u128;
        lo | (hi << 64)
    }

    /// Checked subtraction: `self - rhs`, or `None` if `rhs > self`.
    ///
    /// ```
    /// # use pp_bigint::Nat;
    /// let a = Nat::from(10u64);
    /// let b = Nat::from(4u64);
    /// assert_eq!(a.checked_sub(&b), Some(Nat::from(6u64)));
    /// assert_eq!(b.checked_sub(&a), None);
    /// ```
    #[must_use]
    pub fn checked_sub(&self, rhs: &Nat) -> Option<Nat> {
        if self < rhs {
            return None;
        }
        let mut limbs = self.limbs.clone();
        let mut borrow = 0u64;
        for (i, limb) in limbs.iter_mut().enumerate() {
            let r = rhs.limbs.get(i).copied().unwrap_or(0);
            let (v1, b1) = limb.overflowing_sub(r);
            let (v2, b2) = v1.overflowing_sub(borrow);
            *limb = v2;
            borrow = u64::from(b1) + u64::from(b2);
        }
        debug_assert_eq!(borrow, 0, "subtraction underflow despite ordering check");
        Some(Nat::from_limbs(limbs))
    }

    /// Saturating subtraction: `self - rhs`, or `0` if `rhs > self`.
    #[must_use]
    pub fn saturating_sub(&self, rhs: &Nat) -> Nat {
        self.checked_sub(rhs).unwrap_or_else(Nat::zero)
    }

    /// Raises the value to the power `exp` by binary exponentiation.
    ///
    /// `0⁰` is defined as `1`, matching the convention used by the bounds in
    /// the paper (empty products are `1`).
    ///
    /// ```
    /// # use pp_bigint::Nat;
    /// assert_eq!(Nat::from(3u64).pow(4), Nat::from(81u64));
    /// assert_eq!(Nat::zero().pow(0), Nat::one());
    /// ```
    #[must_use]
    pub fn pow(&self, exp: u64) -> Nat {
        let mut result = Nat::one();
        let mut base = self.clone();
        let mut e = exp;
        while e > 0 {
            if e & 1 == 1 {
                result = &result * &base;
            }
            e >>= 1;
            if e > 0 {
                base = &base * &base;
            }
        }
        result
    }

    /// Raises the value to a [`Nat`] power.
    ///
    /// # Panics
    ///
    /// Panics if the exponent does not fit in `u64` while the base is larger
    /// than one (the result would not fit in memory anyway).
    #[must_use]
    pub fn pow_nat(&self, exp: &Nat) -> Nat {
        if self.is_zero() {
            return if exp.is_zero() {
                Nat::one()
            } else {
                Nat::zero()
            };
        }
        if self.is_one() {
            return Nat::one();
        }
        let e = u64::try_from(exp).expect("exponent too large for a non-trivial base");
        self.pow(e)
    }

    /// Integer division with remainder.
    ///
    /// # Panics
    ///
    /// Panics if `divisor` is zero.
    ///
    /// ```
    /// # use pp_bigint::Nat;
    /// let (q, r) = Nat::from(1000u64).div_rem(&Nat::from(7u64));
    /// assert_eq!(q, Nat::from(142u64));
    /// assert_eq!(r, Nat::from(6u64));
    /// ```
    #[must_use]
    pub fn div_rem(&self, divisor: &Nat) -> (Nat, Nat) {
        assert!(!divisor.is_zero(), "division by zero");
        if self < divisor {
            return (Nat::zero(), self.clone());
        }
        if divisor.limbs.len() == 1 {
            let (q, r) = self.div_rem_u64(divisor.limbs[0]);
            return (q, Nat::from(r));
        }
        // Binary long division: slow but simple and only used on the very
        // large bound values where exact quotients are rarely needed.
        let mut quotient = Nat::zero();
        let mut remainder = Nat::zero();
        let bits = self.bits();
        for i in (0..bits).rev() {
            remainder = remainder.shl_bits(1);
            if self.bit(i) {
                remainder += Nat::one();
            }
            if remainder >= *divisor {
                remainder = remainder
                    .checked_sub(divisor)
                    .expect("remainder >= divisor");
                quotient.set_bit(i);
            }
        }
        (quotient, remainder)
    }

    /// Division with remainder by a machine-word divisor.
    ///
    /// # Panics
    ///
    /// Panics if `divisor` is zero.
    #[must_use]
    pub fn div_rem_u64(&self, divisor: u64) -> (Nat, u64) {
        assert_ne!(divisor, 0, "division by zero");
        let mut out = vec![0u64; self.limbs.len()];
        let mut rem: u128 = 0;
        for i in (0..self.limbs.len()).rev() {
            let cur = (rem << 64) | u128::from(self.limbs[i]);
            out[i] = (cur / u128::from(divisor)) as u64;
            rem = cur % u128::from(divisor);
        }
        (Nat::from_limbs(out), rem as u64)
    }

    /// Left shift by `bits` bit positions.
    #[must_use]
    pub fn shl_bits(&self, bits: u64) -> Nat {
        if self.is_zero() || bits == 0 {
            return self.clone();
        }
        let limb_shift = (bits / 64) as usize;
        let bit_shift = bits % 64;
        let mut limbs = vec![0u64; limb_shift];
        if bit_shift == 0 {
            limbs.extend_from_slice(&self.limbs);
        } else {
            let mut carry = 0u64;
            for &l in &self.limbs {
                limbs.push((l << bit_shift) | carry);
                carry = l >> (64 - bit_shift);
            }
            if carry != 0 {
                limbs.push(carry);
            }
        }
        Nat::from_limbs(limbs)
    }

    /// Right shift by `bits` bit positions.
    #[must_use]
    pub fn shr_bits(&self, bits: u64) -> Nat {
        let limb_shift = (bits / 64) as usize;
        if limb_shift >= self.limbs.len() {
            return Nat::zero();
        }
        let bit_shift = bits % 64;
        let src = &self.limbs[limb_shift..];
        if bit_shift == 0 {
            return Nat::from_limbs(src.to_vec());
        }
        let mut limbs = Vec::with_capacity(src.len());
        for (i, &l) in src.iter().enumerate() {
            let hi = src.get(i + 1).copied().unwrap_or(0);
            limbs.push((l >> bit_shift) | (hi << (64 - bit_shift)));
        }
        Nat::from_limbs(limbs)
    }

    /// Sets bit `i` to one.
    fn set_bit(&mut self, i: u64) {
        let limb = (i / 64) as usize;
        if limb >= self.limbs.len() {
            self.limbs.resize(limb + 1, 0);
        }
        self.limbs[limb] |= 1u64 << (i % 64);
    }

    /// The maximum of two values, by reference.
    #[must_use]
    pub fn max_ref<'a>(&'a self, other: &'a Nat) -> &'a Nat {
        if self >= other {
            self
        } else {
            other
        }
    }

    /// The minimum of two values, by reference.
    #[must_use]
    pub fn min_ref<'a>(&'a self, other: &'a Nat) -> &'a Nat {
        if self <= other {
            self
        } else {
            other
        }
    }
}

impl Ord for Nat {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        match self.limbs.len().cmp(&other.limbs.len()) {
            std::cmp::Ordering::Equal => {
                for i in (0..self.limbs.len()).rev() {
                    match self.limbs[i].cmp(&other.limbs[i]) {
                        std::cmp::Ordering::Equal => continue,
                        non_eq => return non_eq,
                    }
                }
                std::cmp::Ordering::Equal
            }
            non_eq => non_eq,
        }
    }
}

impl PartialOrd for Nat {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_and_one_are_distinct() {
        assert!(Nat::zero().is_zero());
        assert!(!Nat::one().is_zero());
        assert!(Nat::one().is_one());
        assert_ne!(Nat::zero(), Nat::one());
        assert!(Nat::zero() < Nat::one());
    }

    #[test]
    fn default_is_zero() {
        assert_eq!(Nat::default(), Nat::zero());
    }

    #[test]
    fn bits_of_powers_of_two() {
        for k in 0..200u64 {
            let x = Nat::from(2u64).pow(k);
            assert_eq!(x.bits(), k + 1, "2^{k} must have {k}+1 bits");
        }
    }

    #[test]
    fn bit_accessor_matches_bits() {
        let x = Nat::from(0b1011_0101u64);
        assert!(x.bit(0));
        assert!(!x.bit(1));
        assert!(x.bit(2));
        assert!(x.bit(7));
        assert!(!x.bit(8));
        assert!(!x.bit(1000));
    }

    #[test]
    fn checked_sub_basic() {
        let a = Nat::from(1u64 << 63) * Nat::from(4u64);
        let b = Nat::from(3u64);
        let d = a.checked_sub(&b).unwrap();
        assert_eq!(&d + &b, a);
        assert_eq!(b.checked_sub(&a), None);
        assert_eq!(a.saturating_sub(&b), d);
        assert_eq!(b.saturating_sub(&a), Nat::zero());
    }

    #[test]
    fn pow_edge_cases() {
        assert_eq!(Nat::zero().pow(0), Nat::one());
        assert_eq!(Nat::zero().pow(5), Nat::zero());
        assert_eq!(Nat::one().pow(1_000_000), Nat::one());
        assert_eq!(Nat::from(7u64).pow(1), Nat::from(7u64));
    }

    #[test]
    fn pow_matches_repeated_multiplication() {
        let base = Nat::from(12345u64);
        let mut acc = Nat::one();
        for e in 0..20u64 {
            assert_eq!(base.pow(e), acc);
            acc = &acc * &base;
        }
    }

    #[test]
    fn pow_nat_large_exponent_with_trivial_base() {
        let huge = Nat::from(10u64).pow(50);
        assert_eq!(Nat::one().pow_nat(&huge), Nat::one());
        assert_eq!(Nat::zero().pow_nat(&huge), Nat::zero());
        assert_eq!(Nat::zero().pow_nat(&Nat::zero()), Nat::one());
    }

    #[test]
    fn div_rem_u64_roundtrip() {
        let x = Nat::from(2u64).pow(200);
        let (q, r) = x.div_rem_u64(1_000_003);
        assert_eq!(q * Nat::from(1_000_003u64) + Nat::from(r), x);
    }

    #[test]
    fn div_rem_large_divisor_roundtrip() {
        let x = Nat::from(7u64).pow(100);
        let d = Nat::from(3u64).pow(40);
        let (q, r) = x.div_rem(&d);
        assert!(r < d);
        assert_eq!(q * d + r, x);
    }

    #[test]
    fn div_rem_smaller_dividend() {
        let (q, r) = Nat::from(5u64).div_rem(&Nat::from(9u64));
        assert_eq!(q, Nat::zero());
        assert_eq!(r, Nat::from(5u64));
    }

    #[test]
    #[should_panic(expected = "division by zero")]
    fn division_by_zero_panics() {
        let _ = Nat::from(5u64).div_rem(&Nat::zero());
    }

    #[test]
    fn shifts_roundtrip() {
        let x = Nat::from(0xDEAD_BEEF_CAFE_BABEu64);
        for s in [0u64, 1, 7, 63, 64, 65, 130] {
            assert_eq!(x.shl_bits(s).shr_bits(s), x);
        }
    }

    #[test]
    fn approx_log2_on_powers() {
        for k in [1u64, 10, 100, 1000, 10_000] {
            let x = Nat::from(2u64).pow(k);
            assert!((x.approx_log2() - k as f64).abs() < 1e-6);
        }
        assert!(Nat::zero().approx_log2().is_infinite());
    }

    #[test]
    fn approx_log10_of_googol() {
        let googol = Nat::from(10u64).pow(100);
        assert!((googol.approx_log10() - 100.0).abs() < 1e-6);
        assert_eq!(googol.digits(), 101);
    }

    #[test]
    fn to_f64_small_and_huge() {
        assert_eq!(Nat::from(42u64).to_f64(), 42.0);
        assert_eq!(Nat::zero().to_f64(), 0.0);
        let huge = Nat::from(2u64).pow(2000);
        assert!(huge.to_f64().is_infinite());
    }

    #[test]
    fn min_max_ref() {
        let a = Nat::from(3u64);
        let b = Nat::from(5u64);
        assert_eq!(a.max_ref(&b), &b);
        assert_eq!(a.min_ref(&b), &a);
        assert_eq!(a.max_ref(&a), &a);
    }

    #[test]
    fn ordering_is_total_on_samples() {
        let values = [
            Nat::zero(),
            Nat::one(),
            Nat::from(u64::MAX),
            Nat::from(u128::MAX),
            Nat::from(2u64).pow(300),
        ];
        for (i, a) in values.iter().enumerate() {
            for (j, b) in values.iter().enumerate() {
                assert_eq!(a.cmp(b), i.cmp(&j));
            }
        }
    }
}
