//! Symbolic powers `base^exponent` for bounds too large to materialize.
//!
//! Several bounds of the paper (Theorem 6.1's `b`, the Section 8 constants
//! `h`, `k`, `a`, `ℓ`) have exponents that are themselves astronomically
//! large, so the bound cannot be written out as a [`Nat`] in memory. The
//! [`PowerBound`] type keeps the bound in the symbolic form `base^exponent`,
//! supports approximate logarithms for reporting magnitudes, comparison via
//! logarithms, and expansion to an exact [`Nat`] when the value is small
//! enough to be worth materializing.

use crate::Nat;
use std::fmt;

/// A natural number represented symbolically as `base ^ exponent`.
///
/// # Examples
///
/// ```
/// use pp_bigint::{Nat, PowerBound};
///
/// let bound = PowerBound::new(Nat::from(10u64), Nat::from(384u64));
/// assert_eq!(bound.to_nat(4096).unwrap().digits(), 385);
/// let huge = PowerBound::new(Nat::from(3u64), Nat::from(10u64).pow(30));
/// assert!(huge.to_nat(4096).is_none());
/// assert!(huge.approx_log10() > 4.0e29);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PowerBound {
    base: Nat,
    exponent: Nat,
}

impl PowerBound {
    /// Creates the bound `base ^ exponent`.
    #[must_use]
    pub fn new(base: Nat, exponent: Nat) -> Self {
        PowerBound { base, exponent }
    }

    /// Creates the bound representing the exact value `value` (`value¹`).
    #[must_use]
    pub fn exact(value: Nat) -> Self {
        PowerBound {
            base: value,
            exponent: Nat::one(),
        }
    }

    /// The base of the power.
    #[must_use]
    pub fn base(&self) -> &Nat {
        &self.base
    }

    /// The exponent of the power.
    #[must_use]
    pub fn exponent(&self) -> &Nat {
        &self.exponent
    }

    /// Base-2 logarithm of the value (`0` for the value `1`, `-inf` for `0`).
    ///
    /// Returns `f64::INFINITY` when the logarithm itself exceeds the `f64`
    /// range (which only happens for towers far beyond anything the
    /// experiments report).
    #[must_use]
    pub fn approx_log2(&self) -> f64 {
        if self.base.is_zero() {
            return if self.exponent.is_zero() {
                0.0
            } else {
                f64::NEG_INFINITY
            };
        }
        self.exponent.to_f64() * self.base.approx_log2()
    }

    /// Base-10 logarithm of the value.
    #[must_use]
    pub fn approx_log10(&self) -> f64 {
        self.approx_log2() * std::f64::consts::LOG10_2
    }

    /// Expands the bound to an exact [`Nat`] if its size does not exceed
    /// `max_bits` bits; returns `None` otherwise.
    #[must_use]
    pub fn to_nat(&self, max_bits: u64) -> Option<Nat> {
        if self.base.is_zero() || self.base.is_one() {
            return Some(if self.base.is_zero() && !self.exponent.is_zero() {
                Nat::zero()
            } else {
                Nat::one()
            });
        }
        let bits_estimate = self.approx_log2();
        if !bits_estimate.is_finite() || bits_estimate > max_bits as f64 {
            return None;
        }
        let exp = u64::try_from(&self.exponent).ok()?;
        Some(self.base.pow(exp))
    }

    /// Compares two bounds by their logarithms.
    ///
    /// The comparison is exact whenever both values expand within 4096 bits
    /// and otherwise falls back to comparing `f64` logarithms, which is the
    /// right tool for the doubly-exponential magnitudes of the paper.
    #[must_use]
    pub fn approx_cmp(&self, other: &PowerBound) -> std::cmp::Ordering {
        if let (Some(a), Some(b)) = (self.to_nat(4096), other.to_nat(4096)) {
            return a.cmp(&b);
        }
        self.approx_log2()
            .partial_cmp(&other.approx_log2())
            .unwrap_or(std::cmp::Ordering::Equal)
    }
}

impl From<Nat> for PowerBound {
    fn from(value: Nat) -> Self {
        PowerBound::exact(value)
    }
}

impl fmt::Display for PowerBound {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.exponent.is_one() {
            write!(f, "{}", self.base.to_compact_string(12))
        } else {
            write!(
                f,
                "{}^{}",
                self.base.to_compact_string(12),
                self.exponent.to_compact_string(12)
            )
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_bounds_expand_exactly() {
        let b = PowerBound::new(Nat::from(3u64), Nat::from(5u64));
        assert_eq!(b.to_nat(1024), Some(Nat::from(243u64)));
        assert_eq!(b.base(), &Nat::from(3u64));
        assert_eq!(b.exponent(), &Nat::from(5u64));
    }

    #[test]
    fn trivial_bases() {
        assert_eq!(
            PowerBound::new(Nat::one(), Nat::from(10u64).pow(40)).to_nat(64),
            Some(Nat::one())
        );
        assert_eq!(
            PowerBound::new(Nat::zero(), Nat::from(10u64).pow(40)).to_nat(64),
            Some(Nat::zero())
        );
        assert_eq!(
            PowerBound::new(Nat::zero(), Nat::zero()).to_nat(64),
            Some(Nat::one())
        );
    }

    #[test]
    fn huge_bounds_do_not_expand() {
        let huge = PowerBound::new(Nat::from(2u64), Nat::from(10u64).pow(20));
        assert_eq!(huge.to_nat(1 << 20), None);
        assert!((huge.approx_log2() - 1e20).abs() < 1e6);
    }

    #[test]
    fn logarithms() {
        let b = PowerBound::new(Nat::from(10u64), Nat::from(100u64));
        assert!((b.approx_log10() - 100.0).abs() < 1e-9);
        let exact = PowerBound::exact(Nat::from(1024u64));
        assert!((exact.approx_log2() - 10.0).abs() < 1e-9);
    }

    #[test]
    fn comparisons() {
        use std::cmp::Ordering;
        let small = PowerBound::new(Nat::from(2u64), Nat::from(10u64));
        let big = PowerBound::new(Nat::from(3u64), Nat::from(10u64));
        assert_eq!(small.approx_cmp(&big), Ordering::Less);
        assert_eq!(big.approx_cmp(&small), Ordering::Greater);
        let huge_a = PowerBound::new(Nat::from(2u64), Nat::from(10u64).pow(30));
        let huge_b = PowerBound::new(Nat::from(4u64), Nat::from(10u64).pow(30));
        assert_eq!(huge_a.approx_cmp(&huge_b), Ordering::Less);
        assert_eq!(huge_a.approx_cmp(&huge_a), Ordering::Equal);
    }

    #[test]
    fn display_forms() {
        assert_eq!(PowerBound::exact(Nat::from(42u64)).to_string(), "42");
        assert_eq!(
            PowerBound::new(Nat::from(10u64), Nat::from(384u64)).to_string(),
            "10^384"
        );
    }

    #[test]
    fn from_nat() {
        let b: PowerBound = Nat::from(7u64).into();
        assert_eq!(b.to_nat(64), Some(Nat::from(7u64)));
    }
}
