//! Arithmetic operator implementations for [`Nat`].

use crate::Nat;
use std::iter::{Product, Sum};
use std::ops::{Add, AddAssign, Div, Mul, MulAssign, Rem, Shl, Shr};

fn add_limbs(a: &[u64], b: &[u64]) -> Vec<u64> {
    let (long, short) = if a.len() >= b.len() { (a, b) } else { (b, a) };
    let mut out = Vec::with_capacity(long.len() + 1);
    let mut carry = 0u64;
    for (i, &x) in long.iter().enumerate() {
        let y = short.get(i).copied().unwrap_or(0);
        let (s1, c1) = x.overflowing_add(y);
        let (s2, c2) = s1.overflowing_add(carry);
        out.push(s2);
        carry = u64::from(c1) + u64::from(c2);
    }
    if carry != 0 {
        out.push(carry);
    }
    out
}

fn mul_limbs(a: &[u64], b: &[u64]) -> Vec<u64> {
    if a.is_empty() || b.is_empty() {
        return Vec::new();
    }
    let mut out = vec![0u64; a.len() + b.len()];
    for (i, &x) in a.iter().enumerate() {
        if x == 0 {
            continue;
        }
        let mut carry = 0u128;
        for (j, &y) in b.iter().enumerate() {
            let cur = u128::from(out[i + j]) + u128::from(x) * u128::from(y) + carry;
            out[i + j] = cur as u64;
            carry = cur >> 64;
        }
        let mut k = i + b.len();
        while carry != 0 {
            let cur = u128::from(out[k]) + carry;
            out[k] = cur as u64;
            carry = cur >> 64;
            k += 1;
        }
    }
    out
}

impl Add<&Nat> for &Nat {
    type Output = Nat;
    fn add(self, rhs: &Nat) -> Nat {
        Nat::from_limbs(add_limbs(&self.limbs, &rhs.limbs))
    }
}

impl Add for Nat {
    type Output = Nat;
    fn add(self, rhs: Nat) -> Nat {
        &self + &rhs
    }
}

impl Add<&Nat> for Nat {
    type Output = Nat;
    fn add(self, rhs: &Nat) -> Nat {
        &self + rhs
    }
}

impl Add<Nat> for &Nat {
    type Output = Nat;
    fn add(self, rhs: Nat) -> Nat {
        self + &rhs
    }
}

impl Add<u64> for &Nat {
    type Output = Nat;
    fn add(self, rhs: u64) -> Nat {
        self + &Nat::from(rhs)
    }
}

impl Add<u64> for Nat {
    type Output = Nat;
    fn add(self, rhs: u64) -> Nat {
        &self + &Nat::from(rhs)
    }
}

impl AddAssign<&Nat> for Nat {
    fn add_assign(&mut self, rhs: &Nat) {
        *self = &*self + rhs;
    }
}

impl AddAssign for Nat {
    fn add_assign(&mut self, rhs: Nat) {
        *self += &rhs;
    }
}

impl Mul<&Nat> for &Nat {
    type Output = Nat;
    fn mul(self, rhs: &Nat) -> Nat {
        Nat::from_limbs(mul_limbs(&self.limbs, &rhs.limbs))
    }
}

impl Mul for Nat {
    type Output = Nat;
    fn mul(self, rhs: Nat) -> Nat {
        &self * &rhs
    }
}

impl Mul<&Nat> for Nat {
    type Output = Nat;
    fn mul(self, rhs: &Nat) -> Nat {
        &self * rhs
    }
}

impl Mul<Nat> for &Nat {
    type Output = Nat;
    fn mul(self, rhs: Nat) -> Nat {
        self * &rhs
    }
}

impl Mul<u64> for &Nat {
    type Output = Nat;
    fn mul(self, rhs: u64) -> Nat {
        self * &Nat::from(rhs)
    }
}

impl Mul<u64> for Nat {
    type Output = Nat;
    fn mul(self, rhs: u64) -> Nat {
        &self * &Nat::from(rhs)
    }
}

impl MulAssign<&Nat> for Nat {
    fn mul_assign(&mut self, rhs: &Nat) {
        *self = &*self * rhs;
    }
}

impl MulAssign for Nat {
    fn mul_assign(&mut self, rhs: Nat) {
        *self *= &rhs;
    }
}

impl Div<&Nat> for &Nat {
    type Output = Nat;
    fn div(self, rhs: &Nat) -> Nat {
        self.div_rem(rhs).0
    }
}

impl Div for Nat {
    type Output = Nat;
    fn div(self, rhs: Nat) -> Nat {
        &self / &rhs
    }
}

impl Div<&Nat> for Nat {
    type Output = Nat;
    fn div(self, rhs: &Nat) -> Nat {
        &self / rhs
    }
}

impl Rem<&Nat> for &Nat {
    type Output = Nat;
    fn rem(self, rhs: &Nat) -> Nat {
        self.div_rem(rhs).1
    }
}

impl Rem for Nat {
    type Output = Nat;
    fn rem(self, rhs: Nat) -> Nat {
        &self % &rhs
    }
}

impl Shl<u64> for &Nat {
    type Output = Nat;
    fn shl(self, rhs: u64) -> Nat {
        self.shl_bits(rhs)
    }
}

impl Shl<u64> for Nat {
    type Output = Nat;
    fn shl(self, rhs: u64) -> Nat {
        self.shl_bits(rhs)
    }
}

impl Shr<u64> for &Nat {
    type Output = Nat;
    fn shr(self, rhs: u64) -> Nat {
        self.shr_bits(rhs)
    }
}

impl Shr<u64> for Nat {
    type Output = Nat;
    fn shr(self, rhs: u64) -> Nat {
        self.shr_bits(rhs)
    }
}

impl Sum for Nat {
    fn sum<I: Iterator<Item = Nat>>(iter: I) -> Nat {
        iter.fold(Nat::zero(), |acc, x| acc + x)
    }
}

impl<'a> Sum<&'a Nat> for Nat {
    fn sum<I: Iterator<Item = &'a Nat>>(iter: I) -> Nat {
        iter.fold(Nat::zero(), |acc, x| acc + x)
    }
}

impl Product for Nat {
    fn product<I: Iterator<Item = Nat>>(iter: I) -> Nat {
        iter.fold(Nat::one(), |acc, x| acc * x)
    }
}

impl<'a> Product<&'a Nat> for Nat {
    fn product<I: Iterator<Item = &'a Nat>>(iter: I) -> Nat {
        iter.fold(Nat::one(), |acc, x| acc * x)
    }
}

#[cfg(test)]
mod tests {
    use crate::Nat;
    use proptest::prelude::*;

    #[test]
    fn add_with_carry_chain() {
        let a = Nat::from(u64::MAX);
        let b = Nat::from(1u64);
        let c = &a + &b;
        assert_eq!(c, Nat::from(1u128 << 64));
        assert_eq!(c.bits(), 65);
    }

    #[test]
    fn mul_by_zero_and_one() {
        let x = Nat::from(123_456_789u64);
        assert_eq!(&x * &Nat::zero(), Nat::zero());
        assert_eq!(&x * &Nat::one(), x);
        assert_eq!(&Nat::zero() * &x, Nat::zero());
    }

    #[test]
    fn sum_and_product_iterators() {
        let values: Vec<Nat> = (1u64..=10).map(Nat::from).collect();
        let s: Nat = values.iter().sum();
        let p: Nat = values.iter().product();
        assert_eq!(s, Nat::from(55u64));
        assert_eq!(p, Nat::from(3_628_800u64));
        let empty: Vec<Nat> = Vec::new();
        assert_eq!(empty.iter().sum::<Nat>(), Nat::zero());
        assert_eq!(empty.iter().product::<Nat>(), Nat::one());
    }

    #[test]
    fn shift_operators() {
        let x = Nat::from(5u64);
        assert_eq!(&x << 3, Nat::from(40u64));
        assert_eq!(Nat::from(40u64) >> 3, x);
    }

    #[test]
    fn add_u64_convenience() {
        assert_eq!(Nat::from(41u64) + 1u64, Nat::from(42u64));
        assert_eq!(&Nat::from(u64::MAX) + 1u64, Nat::from(1u128 << 64));
    }

    proptest! {
        #[test]
        fn add_agrees_with_u128(a in any::<u64>(), b in any::<u64>()) {
            let expected = u128::from(a) + u128::from(b);
            prop_assert_eq!(Nat::from(a) + Nat::from(b), Nat::from(expected));
        }

        #[test]
        fn mul_agrees_with_u128(a in any::<u64>(), b in any::<u64>()) {
            let expected = u128::from(a) * u128::from(b);
            prop_assert_eq!(Nat::from(a) * Nat::from(b), Nat::from(expected));
        }

        #[test]
        fn sub_inverts_add(a in any::<u128>(), b in any::<u128>()) {
            let sum = Nat::from(a) + Nat::from(b);
            prop_assert_eq!(sum.checked_sub(&Nat::from(b)), Some(Nat::from(a)));
        }

        #[test]
        fn div_rem_roundtrip(a in any::<u128>(), b in 1u64..) {
            let (q, r) = Nat::from(a).div_rem(&Nat::from(b));
            prop_assert!(r.clone() < Nat::from(b));
            prop_assert_eq!(q * Nat::from(b) + r, Nat::from(a));
        }

        #[test]
        fn addition_is_commutative_and_associative(
            a in any::<u128>(), b in any::<u128>(), c in any::<u128>()
        ) {
            let (a, b, c) = (Nat::from(a), Nat::from(b), Nat::from(c));
            prop_assert_eq!(&a + &b, &b + &a);
            prop_assert_eq!((&a + &b) + &c, &a + (&b + &c));
        }

        #[test]
        fn multiplication_distributes(a in any::<u64>(), b in any::<u64>(), c in any::<u64>()) {
            let (a, b, c) = (Nat::from(a), Nat::from(b), Nat::from(c));
            prop_assert_eq!(&a * &(&b + &c), &(&a * &b) + &(&a * &c));
        }

        #[test]
        fn ordering_agrees_with_u128(a in any::<u128>(), b in any::<u128>()) {
            prop_assert_eq!(Nat::from(a).cmp(&Nat::from(b)), a.cmp(&b));
        }

        #[test]
        fn shifts_agree_with_u128(a in any::<u64>(), s in 0u64..60) {
            let expected = u128::from(a) << s;
            prop_assert_eq!(Nat::from(a) << s, Nat::from(expected));
            prop_assert_eq!(Nat::from(expected) >> s, Nat::from(a));
        }
    }
}
