//! Formatting and parsing for [`Nat`].

use crate::error::ParseNatError;
use crate::Nat;
use std::fmt;
use std::str::FromStr;

impl Nat {
    /// Renders the value in decimal.
    #[must_use]
    pub fn to_decimal_string(&self) -> String {
        if self.is_zero() {
            return "0".to_owned();
        }
        // Repeatedly divide by 10^19 (the largest power of ten fitting u64).
        const CHUNK: u64 = 10_000_000_000_000_000_000;
        let mut chunks: Vec<u64> = Vec::new();
        let mut cur = self.clone();
        while !cur.is_zero() {
            let (q, r) = cur.div_rem_u64(CHUNK);
            chunks.push(r);
            cur = q;
        }
        let mut out = String::new();
        for (i, chunk) in chunks.iter().rev().enumerate() {
            if i == 0 {
                out.push_str(&chunk.to_string());
            } else {
                out.push_str(&format!("{chunk:019}"));
            }
        }
        out
    }

    /// Renders the value compactly: exact decimal when it has at most
    /// `max_digits` digits, otherwise scientific notation `m.mmm × 10^e`.
    ///
    /// This is the format used throughout the experiment tables, where bound
    /// values routinely have thousands of digits.
    ///
    /// ```
    /// # use pp_bigint::Nat;
    /// assert_eq!(Nat::from(1234u64).to_compact_string(6), "1234");
    /// let big = Nat::from(10u64).pow(50);
    /// assert_eq!(big.to_compact_string(6), "1.000e50");
    /// ```
    #[must_use]
    pub fn to_compact_string(&self, max_digits: usize) -> String {
        let decimal = self.to_decimal_string();
        if decimal.len() <= max_digits {
            return decimal;
        }
        let exponent = decimal.len() - 1;
        let mantissa_digits: String = decimal.chars().take(4).collect();
        let (head, tail) = mantissa_digits.split_at(1);
        format!("{head}.{tail}e{exponent}")
    }
}

impl fmt::Display for Nat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.pad_integral(true, "", &self.to_decimal_string())
    }
}

impl fmt::Debug for Nat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Nat({})", self.to_compact_string(24))
    }
}

impl FromStr for Nat {
    type Err = ParseNatError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let s = s.trim();
        if s.is_empty() {
            return Err(ParseNatError::empty());
        }
        let mut value = Nat::zero();
        let ten = Nat::from(10u64);
        for (i, ch) in s.chars().enumerate() {
            if ch == '_' {
                continue;
            }
            let digit = ch
                .to_digit(10)
                .ok_or_else(|| ParseNatError::invalid_digit(ch, i))?;
            value = value * &ten + Nat::from(u64::from(digit));
        }
        Ok(value)
    }
}

#[cfg(feature = "serde")]
mod serde_impls {
    use super::*;
    use serde::{Deserialize, Deserializer, Serialize, Serializer};

    impl Serialize for Nat {
        fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
            serializer.serialize_str(&self.to_decimal_string())
        }
    }

    impl<'de> Deserialize<'de> for Nat {
        fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
            let s = String::deserialize(deserializer)?;
            s.parse().map_err(serde::de::Error::custom)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn display_small_values() {
        assert_eq!(Nat::zero().to_string(), "0");
        assert_eq!(Nat::from(7u64).to_string(), "7");
        assert_eq!(Nat::from(u64::MAX).to_string(), "18446744073709551615");
    }

    #[test]
    fn display_value_spanning_multiple_limbs() {
        let v = Nat::from(u128::MAX);
        assert_eq!(v.to_string(), "340282366920938463463374607431768211455");
    }

    #[test]
    fn parse_roundtrip_large() {
        let x = Nat::from(7u64).pow(120);
        let parsed: Nat = x.to_string().parse().unwrap();
        assert_eq!(parsed, x);
    }

    #[test]
    fn parse_with_underscores_and_whitespace() {
        let parsed: Nat = " 1_000_000 ".parse().unwrap();
        assert_eq!(parsed, Nat::from(1_000_000u64));
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!("".parse::<Nat>().is_err());
        assert!("   ".parse::<Nat>().is_err());
        assert!("-3".parse::<Nat>().is_err());
        assert!("12a".parse::<Nat>().is_err());
    }

    #[test]
    fn compact_string_forms() {
        assert_eq!(Nat::zero().to_compact_string(4), "0");
        assert_eq!(Nat::from(9999u64).to_compact_string(4), "9999");
        assert_eq!(Nat::from(123_456u64).to_compact_string(4), "1.234e5");
        let g = Nat::from(10u64).pow(100);
        assert_eq!(g.to_compact_string(10), "1.000e100");
    }

    #[test]
    fn debug_is_never_empty() {
        assert!(!format!("{:?}", Nat::zero()).is_empty());
        assert!(format!("{:?}", Nat::from(5u64)).contains('5'));
    }

    #[test]
    fn padded_display() {
        assert_eq!(format!("{:>6}", Nat::from(42u64)), "    42");
    }

    proptest! {
        #[test]
        fn display_parse_roundtrip(v in any::<u128>()) {
            let n = Nat::from(v);
            prop_assert_eq!(n.to_string().parse::<Nat>().unwrap(), n.clone());
            prop_assert_eq!(n.to_string(), v.to_string());
        }
    }
}
