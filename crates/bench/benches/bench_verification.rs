//! Criterion bench: exhaustive stable-computation verification (experiment E1).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pp_petri::ExplorationLimits;
use pp_population::verify::verify_counting_inputs;
use pp_population::Predicate;
use pp_protocols::{flock, leaders_n};

fn bench_verification(c: &mut Criterion) {
    let limits = ExplorationLimits::default();
    let mut group = c.benchmark_group("verify_counting");
    group.sample_size(10);
    for n in [1u64, 2, 3] {
        group.bench_with_input(BenchmarkId::new("example_4_2", n), &n, |b, &n| {
            let protocol = leaders_n::example_4_2(n);
            let predicate = Predicate::counting("i", n);
            b.iter(|| verify_counting_inputs(&protocol, &predicate, n + 2, &limits));
        });
        group.bench_with_input(BenchmarkId::new("flock_unary", n), &n, |b, &n| {
            let protocol = flock::flock_of_birds_unary(n);
            let predicate = Predicate::counting("a1", n);
            b.iter(|| verify_counting_inputs(&protocol, &predicate, n + 2, &limits));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_verification);
criterion_main!(benches);
