//! Criterion bench: computing the Theorem 4.3 bound and the Section 8
//! constants (experiment E2).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pp_statecomplexity::theorem_4_3_bound;
use pp_statecomplexity::Section8Constants;

fn bench_theorem_4_3(c: &mut Criterion) {
    let mut group = c.benchmark_group("theorem_4_3_bound");
    for states in [4u64, 8, 16, 32] {
        group.bench_with_input(BenchmarkId::from_parameter(states), &states, |b, &s| {
            b.iter(|| theorem_4_3_bound(std::hint::black_box(s), 2, 2));
        });
    }
    group.finish();
}

fn bench_section8_constants(c: &mut Criterion) {
    let mut group = c.benchmark_group("section8_constants");
    for states in [4u64, 6, 8] {
        group.bench_with_input(BenchmarkId::from_parameter(states), &states, |b, &s| {
            b.iter(|| Section8Constants::new(std::hint::black_box(s), 1, 1, 2, 2));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_theorem_4_3, bench_section8_constants);
criterion_main!(benches);
