//! Criterion bench: Hilbert-basis computation (experiment E9).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pp_diophantine::{HilbertConfig, LinearSystem};

fn bench_hilbert(c: &mut Criterion) {
    let systems: Vec<(&str, Vec<Vec<i64>>)> = vec![
        ("x+y=2z", vec![vec![1, 1, -2]]),
        ("3x=y+z", vec![vec![3, -1, -1]]),
        ("two_equations", vec![vec![1, 2, -3], vec![2, -1, -1]]),
        ("frobenius_5_7", vec![vec![5, 7, -3, -11]]),
    ];
    let mut group = c.benchmark_group("hilbert_basis");
    for (name, rows) in systems {
        let system = LinearSystem::from_rows(rows).unwrap();
        group.bench_with_input(BenchmarkId::from_parameter(name), &system, |b, system| {
            b.iter(|| system.hilbert_basis(&HilbertConfig::default()).unwrap());
        });
    }
    group.finish();
}

criterion_group!(benches, bench_hilbert);
criterion_main!(benches);
