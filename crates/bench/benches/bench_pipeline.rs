//! Criterion bench: the full Section 8 analysis pipeline (experiment E10).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pp_petri::ExplorationLimits;
use pp_protocols::{leaders_n, modulo};
use pp_statecomplexity::analyze_protocol;

fn bench_pipeline(c: &mut Criterion) {
    let limits = ExplorationLimits::with_max_configurations(500);
    let entries = [
        ("example_4_2(n=2)", leaders_n::example_4_2(2)),
        ("modulo(m=2)", modulo::modulo_with_leader(2, 0)),
    ];
    let mut group = c.benchmark_group("section8_pipeline");
    group.sample_size(10);
    for (name, protocol) in entries {
        group.bench_with_input(
            BenchmarkId::from_parameter(name),
            &protocol,
            |b, protocol| {
                b.iter(|| analyze_protocol(protocol, &limits));
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_pipeline);
criterion_main!(benches);
