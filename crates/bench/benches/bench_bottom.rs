//! Criterion bench: bottom-witness search (experiment E7).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pp_petri::bottom::find_bottom_witness;
use pp_petri::ExplorationLimits;
use pp_population::StateId;
use pp_protocols::{leaders_n, modulo};
use std::collections::BTreeSet;

fn bench_bottom(c: &mut Criterion) {
    let limits = ExplorationLimits::with_max_configurations(1_000);
    let entries = [
        ("example_4_2", leaders_n::example_4_2(3)),
        ("modulo_3", modulo::modulo_with_leader(3, 1)),
    ];
    let mut group = c.benchmark_group("bottom_witness");
    group.sample_size(20);
    for (name, protocol) in entries {
        let non_initial: BTreeSet<StateId> = protocol
            .states()
            .filter(|s| !protocol.initial_states().contains(s))
            .collect();
        let net = protocol.net().restrict(&non_initial);
        let leaders = protocol.leaders().restrict(&non_initial);
        group.bench_with_input(BenchmarkId::from_parameter(name), &(), |b, ()| {
            b.iter(|| find_bottom_witness(&net, &leaders, &limits));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_bottom);
criterion_main!(benches);
