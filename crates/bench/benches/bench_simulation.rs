//! Criterion bench: simulation throughput, sparse vs dense configurations
//! (experiment E12 ablation).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pp_protocols::leaders_n::example_4_2;
use pp_sim::{compile_protocol, Simulation};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn bench_simulation_run(c: &mut Criterion) {
    let protocol = example_4_2(2);
    let mut group = c.benchmark_group("simulation_to_convergence");
    group.sample_size(20);
    for agents in [20u64, 100] {
        group.bench_with_input(
            BenchmarkId::from_parameter(agents),
            &agents,
            |b, &agents| {
                let initial = protocol.initial_config_with_count(agents);
                let mut seed = 0u64;
                b.iter(|| {
                    seed += 1;
                    let mut sim = Simulation::new(&protocol, &initial, seed);
                    sim.run(10_000_000)
                });
            },
        );
    }
    group.finish();
}

fn bench_step_representation(c: &mut Criterion) {
    // Ablation: dense firing vs sparse firing of the same random transitions.
    let protocol = example_4_2(2);
    let net = protocol.net().clone();
    let dense_net = compile_protocol(&protocol);
    let initial = protocol.initial_config_with_count(100);
    let mut group = c.benchmark_group("firing_representation");
    group.bench_function("dense", |b| {
        let mut rng = StdRng::seed_from_u64(1);
        b.iter(|| {
            let mut config = dense_net.dense_config(&initial);
            for _ in 0..1_000 {
                let enabled = dense_net.enabled(&config);
                if enabled.is_empty() {
                    break;
                }
                let t = enabled[rng.gen_range(0..enabled.len())];
                dense_net.transitions()[t].fire(&mut config);
            }
            config
        });
    });
    group.bench_function("sparse", |b| {
        let mut rng = StdRng::seed_from_u64(1);
        b.iter(|| {
            let mut config = initial.clone();
            for _ in 0..1_000 {
                let enabled = net.enabled_transitions(&config);
                if enabled.is_empty() {
                    break;
                }
                let t = enabled[rng.gen_range(0..enabled.len())];
                config = net.transition(t).fire(&config).expect("enabled");
            }
            config
        });
    });
    group.finish();
}

criterion_group!(benches, bench_simulation_run, bench_step_representation);
criterion_main!(benches);
