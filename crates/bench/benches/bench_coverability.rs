//! Criterion bench: coverability procedures (experiment E5 ablation —
//! backward algorithm vs forward search vs Karp–Miller).

use criterion::{criterion_group, criterion_main, Criterion};
use pp_multiset::Multiset;
use pp_petri::cover::{shortest_covering_word, CoverabilityOracle};
use pp_petri::karp_miller::KarpMillerTree;
use pp_petri::ExplorationLimits;
use pp_protocols::leaders_n::example_4_2;

fn bench_coverability(c: &mut Criterion) {
    let protocol = example_4_2(2);
    let net = protocol.net().clone();
    let p = protocol.state_id("p").unwrap();
    let q = protocol.state_id("q").unwrap();
    let target = Multiset::from_pairs([(p, 1u64), (q, 1)]);
    let start = protocol.initial_config_with_count(6);
    let limits = ExplorationLimits::default();

    let mut group = c.benchmark_group("coverability_example_4_2");
    group.bench_function("backward_oracle", |b| {
        b.iter(|| {
            let oracle = CoverabilityOracle::build(&net, target.clone());
            std::hint::black_box(oracle.is_coverable_from(&start))
        });
    });
    group.bench_function("forward_bfs", |b| {
        b.iter(|| std::hint::black_box(shortest_covering_word(&net, &start, &target, &limits)));
    });
    group.bench_function("karp_miller", |b| {
        b.iter(|| {
            let tree = KarpMillerTree::build(&net, &start, 100_000);
            std::hint::black_box(tree.covers(&target))
        });
    });
    group.finish();
}

criterion_group!(benches, bench_coverability);
criterion_main!(benches);
