//! Criterion bench: coverability procedures (experiment E5 ablation —
//! backward algorithm vs forward search vs Karp–Miller) and the
//! sparse-vs-dense exploration ablation feeding `BENCH_sparse_dense.json`
//! (see the `bench_sparse_dense` binary for the tracked numbers).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pp_multiset::Multiset;
use pp_petri::explore::sparse_reference_exploration;
use pp_petri::{Analysis, ExplorationLimits};
use pp_protocols::leaders_n::example_4_2;

fn bench_coverability(c: &mut Criterion) {
    let protocol = example_4_2(2);
    let net = protocol.net().clone();
    let p = protocol.state_id("p").unwrap();
    let q = protocol.state_id("q").unwrap();
    let target = Multiset::from_pairs([(p, 1u64), (q, 1)]);
    let start = protocol.initial_config_with_count(6);
    let limits = ExplorationLimits::default();

    // Fresh sessions per iteration: each timed sample includes the compile,
    // like the historical one-shot entry points did.
    let mut group = c.benchmark_group("coverability_example_4_2");
    group.bench_function("backward_oracle", |b| {
        b.iter(|| {
            let oracle = Analysis::new(&net).coverability(target.clone()).run();
            std::hint::black_box(oracle.is_coverable_from(&start))
        });
    });
    group.bench_function("forward_bfs", |b| {
        b.iter(|| {
            std::hint::black_box(
                Analysis::new(&net)
                    .covering_word(start.clone(), target.clone())
                    .limits(limits)
                    .run()
                    .into_word(),
            )
        });
    });
    group.bench_function("karp_miller", |b| {
        b.iter(|| {
            let tree = Analysis::new(&net).karp_miller(start.clone()).run();
            std::hint::black_box(tree.covers(&target))
        });
    });
    group.finish();
}

fn bench_exploration_representation(c: &mut Criterion) {
    // Ablation: full reachability-graph construction on the dense interned
    // engine vs the sparse BTreeMap reference path. The flock protocol at
    // 20+ agents yields graphs of thousands of nodes — the regime where
    // the interning representation dominates the cost (≥3× expected; see
    // BENCH_sparse_dense.json for tracked numbers).
    let protocol = pp_protocols::flock::flock_of_birds_unary(5);
    let net = protocol.net().clone();
    let limits = ExplorationLimits::default();
    let mut group = c.benchmark_group("exploration_representation");
    group.sample_size(10);
    for agents in [15u64, 20] {
        let start = protocol.initial_config_with_count(agents);
        group.bench_with_input(
            BenchmarkId::new("dense_engine", agents),
            &start,
            |b, start| {
                b.iter(|| {
                    Analysis::new(&net)
                        .reachability([start.clone()])
                        .limits(limits)
                        .run()
                        .len()
                });
            },
        );
        group.bench_with_input(
            BenchmarkId::new("sparse_reference", agents),
            &start,
            |b, start| {
                b.iter(|| {
                    sparse_reference_exploration(&net, [start.clone()], &limits)
                        .0
                        .len()
                });
            },
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_coverability,
    bench_exploration_representation
);
criterion_main!(benches);
