//! Experiment E3 — the closed gap: states vs n for the upper bound of \[6\]
//! and the paper's Ω((log log n)^h) lower bound.

use pp_bench::{fmt_f64, Table};
use pp_statecomplexity::{
    bej_upper_bound_states, corollary_4_4_min_states, leaderless_upper_bound_states,
};

fn main() {
    let mut table = Table::new([
        "n",
        "log₂ n",
        "BEJ upper bound O(log log n)",
        "leaderless upper bound O(log n)",
        "lower bound h=0.25",
        "lower bound h=0.40",
        "lower bound h=0.49",
    ]);
    for k in 1..=16u32 {
        // n = 2^(2^k): log₂ n = 2^k.
        let log2_n = (1u64 << k) as f64;
        table.row([
            format!("2^2^{k}"),
            fmt_f64(log2_n),
            fmt_f64(bej_upper_bound_states(log2_n)),
            fmt_f64(leaderless_upper_bound_states(log2_n)),
            fmt_f64(corollary_4_4_min_states(log2_n, 2, 0.25)),
            fmt_f64(corollary_4_4_min_states(log2_n, 2, 0.40)),
            fmt_f64(corollary_4_4_min_states(log2_n, 2, 0.49)),
        ]);
    }
    table.print("E3 — upper bound O(log log n) vs lower bound Ω((log log n)^h), h < 1/2");
    println!(
        "Paper claim (Corollary 4.4 vs [6]): both curves are functions of log log n; the lower \
         bound matches the upper bound up to (roughly) a square root in the exponent."
    );
}
