//! Batch-service throughput: a fleet of catalog queries through the batch
//! scheduler vs the same fleet as solo one-shot sessions.
//!
//! The batch layer's wins are structural — identical nets share one
//! compiled engine, outright identical jobs share one result — so the
//! workload here is shaped like real serving traffic: every catalog
//! entry is queried at two agent counts *and* one of the two queries is
//! duplicated (think: concurrent clients asking the same question).
//!
//! `--check` additionally re-verifies the batch layer's determinism
//! contract and exits nonzero on any violation:
//!
//! * every unpooled batch job's graph is `identical_to` a solo session
//!   query at the job's limits;
//! * under a shared half-budget pool, every job's graph is `identical_to`
//!   a solo query at the job's **final** (fair-shared, redistributed)
//!   budget, and the final budgets agree between the sequential and the
//!   parallel runner.
//!
//! Results land in `BENCH_batch_throughput.json`. Timings are interleaved
//! minima (the standard protocol of this repo's benches on throttled CI
//! hosts); the correctness gates are what CI enforces — on the 2-vCPU
//! sandbox the parallel-runner column is reported for information only.

use pp_bench::{fmt_f64, Table};
use pp_petri::batch::{Batch, BatchJob, BatchReport};
use pp_petri::{Analysis, ExplorationLimits, Parallelism};
use pp_population::StateId;
use pp_protocols::batch::catalog_jobs;
use std::time::Instant;

struct Row {
    n: u64,
    jobs: usize,
    distinct_nets: usize,
    compile_hits: usize,
    result_hits: usize,
    /// Mean stored arena bytes per node over the batch's graphs (each net
    /// picks its own packed row layout, so this is a fleet average).
    bytes_per_node: f64,
    solo_ns: u128,
    batch_ns: u128,
    batch_par_ns: u128,
}

/// The serving-shaped job list for threshold `n`: the catalog at two
/// agent counts, with the first agent count's jobs duplicated once.
fn job_list(n: u64) -> Vec<BatchJob<StateId>> {
    let limits = ExplorationLimits::default();
    let mut jobs = catalog_jobs(n, 10, limits);
    jobs.extend(catalog_jobs(n, 10, limits)); // duplicated clients
    jobs.extend(catalog_jobs(n, 12, limits)); // same nets, other question
    jobs
}

/// Runs every job as its own one-shot session (compile + explore) — the
/// service-less baseline the batch layer competes against.
fn run_solo(
    jobs: &[BatchJob<StateId>],
) -> Vec<std::sync::Arc<pp_petri::ReachabilityGraph<StateId>>> {
    jobs.iter()
        .map(|job| {
            let pp_petri::batch::BatchQuery::Reachability { initials } = &job.query else {
                unreachable!("catalog jobs are reachability jobs");
            };
            Analysis::new(&job.net)
                .reachability(initials.iter().cloned())
                .limits(job.limits)
                .run()
        })
        .collect()
}

/// Checks one batch report against solo runs at each job's final limits.
fn check_against_solo(jobs: &[BatchJob<StateId>], report: &BatchReport<StateId>) -> bool {
    let mut ok = true;
    for (job, job_report) in jobs.iter().zip(&report.jobs) {
        let pp_petri::batch::BatchQuery::Reachability { initials } = &job.query else {
            continue;
        };
        let solo = Analysis::new(&job.net)
            .reachability(initials.iter().cloned())
            .limits(job_report.final_limits)
            .run();
        let graph = job_report
            .outcome
            .as_reachability()
            .expect("reachability job");
        if !graph.identical_to(&solo) {
            eprintln!(
                "BATCH CHECK FAILED: {} diverges from a solo run at {:?}",
                job_report.name, job_report.final_limits
            );
            ok = false;
        }
    }
    ok
}

fn main() {
    let check = std::env::args().any(|arg| arg == "--check");
    let runs = 5usize;
    let mut rows: Vec<Row> = Vec::new();
    let mut ok = true;

    for n in [2u64, 4] {
        let jobs = job_list(n);

        let mut solo_ns = u128::MAX;
        let mut batch_ns = u128::MAX;
        let mut batch_par_ns = u128::MAX;
        let mut last_report: Option<BatchReport<StateId>> = None;
        for _ in 0..runs {
            let start = Instant::now();
            let graphs = run_solo(&jobs);
            solo_ns = solo_ns.min(start.elapsed().as_nanos());
            std::hint::black_box(graphs.len());

            let start = Instant::now();
            let report = Batch::new().jobs(jobs.iter().cloned()).run();
            batch_ns = batch_ns.min(start.elapsed().as_nanos());
            std::hint::black_box(report.jobs.len());
            last_report = Some(report);

            let start = Instant::now();
            let report = Batch::new()
                .jobs(jobs.iter().cloned())
                .parallelism(Parallelism::Parallel(2))
                .run();
            batch_par_ns = batch_par_ns.min(start.elapsed().as_nanos());
            std::hint::black_box(report.jobs.len());
        }
        let report = last_report.expect("at least one run");
        let bytes_per_node = {
            let per_graph: Vec<usize> = report
                .jobs
                .iter()
                .filter_map(|job| job.outcome.as_reachability())
                .map(|graph| graph.bytes_per_node())
                .collect();
            per_graph.iter().sum::<usize>() as f64 / per_graph.len().max(1) as f64
        };

        if check {
            // Unpooled: every job == solo at its own limits.
            ok &= check_against_solo(&jobs, &report);
            // Pooled at half the total demand: fair-share + redistribution
            // must still match solo runs at the deterministic final
            // budgets, under both runner modes.
            let total_nodes: usize = report.jobs.iter().map(|job| job.explored).sum();
            let pool = (total_nodes / 2).max(1);
            let pooled_seq = Batch::new().jobs(jobs.iter().cloned()).pool(pool).run();
            let pooled_par = Batch::new()
                .jobs(jobs.iter().cloned())
                .pool(pool)
                .parallelism(Parallelism::Parallel(2))
                .run();
            ok &= check_against_solo(&jobs, &pooled_seq);
            ok &= check_against_solo(&jobs, &pooled_par);
            for (s, p) in pooled_seq.jobs.iter().zip(&pooled_par.jobs) {
                if s.final_limits != p.final_limits {
                    eprintln!(
                        "BATCH CHECK FAILED: {} final budgets diverge across runners \
                         ({:?} vs {:?})",
                        s.name, s.final_limits, p.final_limits
                    );
                    ok = false;
                }
            }
        }

        rows.push(Row {
            n,
            jobs: jobs.len(),
            distinct_nets: report.distinct_nets,
            compile_hits: report.compile_cache_hits,
            result_hits: report.result_cache_hits,
            bytes_per_node,
            solo_ns,
            batch_ns,
            batch_par_ns,
        });
    }

    let mut table = Table::new([
        "n",
        "jobs",
        "nets",
        "compile hits",
        "result hits",
        "B/node",
        "solo (ms)",
        "batch (ms)",
        "batch par(2) (ms)",
        "speedup",
        "jobs/s (batch)",
    ]);
    for row in &rows {
        let jobs_per_sec = row.jobs as f64 / (row.batch_ns as f64 / 1e9);
        table.row([
            row.n.to_string(),
            row.jobs.to_string(),
            row.distinct_nets.to_string(),
            row.compile_hits.to_string(),
            row.result_hits.to_string(),
            fmt_f64(row.bytes_per_node),
            fmt_f64(row.solo_ns as f64 / 1e6),
            fmt_f64(row.batch_ns as f64 / 1e6),
            fmt_f64(row.batch_par_ns as f64 / 1e6),
            fmt_f64(row.solo_ns as f64 / row.batch_ns.max(1) as f64),
            fmt_f64(jobs_per_sec),
        ]);
    }
    table.print("Batch service throughput: scheduled batch vs solo one-shot sessions");

    // Throughput is reported, not gated: the structural win (batch runs
    // ~2/3 of the explorations and ~1/3 of the compiles of the solo loop)
    // is real, but sub-millisecond wall-clock margins are not enforceable
    // on throttled shared-CPU CI hosts. The hard gate is correctness.
    for row in &rows {
        if row.batch_ns >= row.solo_ns {
            eprintln!(
                "note: n={} batch ({} ns) not faster than solo ({} ns) in this run \
                 (informational; timing on shared hosts is noisy)",
                row.n, row.batch_ns, row.solo_ns
            );
        }
    }

    let mut json = String::from("[\n");
    for (i, row) in rows.iter().enumerate() {
        json.push_str(&format!(
            "  {{\"n\": {}, \"jobs\": {}, \"distinct_nets\": {}, \"compile_cache_hits\": {}, \"result_cache_hits\": {}, \"bytes_per_node\": {:.1}, \"solo_ns\": {}, \"batch_ns\": {}, \"batch_par_ns\": {}, \"speedup\": {:.3}}}{}\n",
            row.n,
            row.jobs,
            row.distinct_nets,
            row.compile_hits,
            row.result_hits,
            row.bytes_per_node,
            row.solo_ns,
            row.batch_ns,
            row.batch_par_ns,
            row.solo_ns as f64 / row.batch_ns.max(1) as f64,
            if i + 1 == rows.len() { "" } else { "," }
        ));
    }
    json.push_str("]\n");
    let path = "BENCH_batch_throughput.json";
    match std::fs::write(path, &json) {
        Ok(()) => println!("wrote {path}"),
        Err(error) => eprintln!("could not write {path}: {error}"),
    }
    if !ok {
        eprintln!("batch determinism checks FAILED");
        std::process::exit(1);
    }
    println!(
        "batch checks passed{}",
        if check {
            ": all jobs bit-identical to solo runs at their final budgets, pooled and unpooled, \
             sequential and parallel runners"
        } else {
            " (run with --check for the bit-identity gates)"
        }
    );
}
