//! Experiment E2 — the Theorem 4.3 bound as a function of `|P|`, width, leaders.

use pp_bench::{fmt_f64, Table};
use pp_statecomplexity::theorem_4_3_bound;

fn main() {
    let mut table = Table::new([
        "|P|",
        "width",
        "leaders",
        "bound (symbolic)",
        "log10(bound)",
    ]);
    for states in 2..=10u64 {
        for &(width, leaders) in &[(1u64, 1u64), (2, 2), (4, 4)] {
            let bound = theorem_4_3_bound(states, width, leaders);
            table.row([
                states.to_string(),
                width.to_string(),
                leaders.to_string(),
                bound.to_string(),
                fmt_f64(bound.approx_log10()),
            ]);
        }
    }
    table.print("E2 — Theorem 4.3: n ≤ (4 + 4·width + 2·leaders)^(|P|^((|P|+2)²))");
    println!(
        "Paper claim (Theorem 4.3): the maximal decidable threshold is doubly exponential in a \
         polynomial of |P|; equivalently |P| must grow like a power of log log n (Corollary 4.4)."
    );
}
