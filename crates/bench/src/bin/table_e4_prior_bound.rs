//! Experiment E4 — improvement over the Czerner–Esparza PODC'21 lower bound.

use pp_bench::{fmt_f64, Table};
use pp_bigint::Nat;
use pp_statecomplexity::ackermann::{ackermann_peter, czerner_esparza_lower_bound};
use pp_statecomplexity::corollary_4_4_min_states;

fn main() {
    let mut ack = Table::new(["k", "A(k, k)"]);
    for k in 0..=3u64 {
        ack.row([k.to_string(), ackermann_peter(k, k).to_string()]);
    }
    ack.print("E4a — the Ackermann diagonal underlying the PODC'21 bound");

    let mut table = Table::new([
        "n",
        "PODC'21 lower bound Ω(A⁻¹(n))",
        "this paper, h = 0.40",
        "this paper, h = 0.49",
    ]);
    let cases: Vec<(String, Nat, f64)> = vec![
        (
            "10^3".into(),
            Nat::from(10u64).pow(3),
            (10f64).powi(3).log2(),
        ),
        (
            "10^9".into(),
            Nat::from(10u64).pow(9),
            (10f64).powi(9).log2(),
        ),
        ("2^256".into(), Nat::from(2u64).pow(256), 256.0),
        ("2^65536".into(), Nat::from(2u64).pow(65536), 65536.0),
        (
            "2^(2^30)".into(),
            Nat::from(2u64).pow(1 << 30),
            (1u64 << 30) as f64,
        ),
        (
            "2^(2^50)".into(),
            Nat::from(2u64).pow(1 << 20),
            (1u64 << 50) as f64,
        ),
    ];
    for (label, n, log2_n) in &cases {
        table.row([
            label.clone(),
            czerner_esparza_lower_bound(n).to_string(),
            fmt_f64(corollary_4_4_min_states(*log2_n, 2, 0.40)),
            fmt_f64(corollary_4_4_min_states(*log2_n, 2, 0.49)),
        ]);
    }
    table.print("E4b — prior inverse-Ackermann bound vs the new (log log n)^h bound");
    println!(
        "Paper claim (introduction): the inverse-Ackermann bound is at most 3–4 for any \
         conceivable n, while the new bound grows like a power of log log n."
    );
    println!(
        "Note: the 2^(2^50) row uses the analytic formula for the new bound; the Ackermann \
         column is evaluated on a 2^(2^20) stand-in since the exact Nat would not fit in memory \
         (the inverse-Ackermann value is unchanged)."
    );
}
