//! Sparse-vs-dense exploration ablation (E12 companion).
//!
//! Times full reachability-graph construction on the dense interned engine
//! against the sparse `BTreeMap` reference path for catalog protocols,
//! prints the comparison table and writes the numbers to
//! `BENCH_sparse_dense.json` so the speedup is tracked across PRs.

use pp_bench::{fmt_f64, Table};
use pp_petri::explore::sparse_reference_exploration;
use pp_petri::{Analysis, ExplorationLimits};
use pp_protocols::{flock, leaders_n, threshold};
use std::time::Instant;

struct Row {
    family: &'static str,
    agents: u64,
    nodes: usize,
    sparse_ns: u128,
    dense_ns: u128,
}

/// Median wall-clock nanoseconds of `runs` executions of `f`.
fn median_ns<F: FnMut() -> usize>(runs: usize, mut f: F) -> u128 {
    let mut samples: Vec<u128> = (0..runs)
        .map(|_| {
            let start = Instant::now();
            std::hint::black_box(f());
            start.elapsed().as_nanos()
        })
        .collect();
    samples.sort_unstable();
    samples[samples.len() / 2]
}

fn main() {
    let limits = ExplorationLimits::default();
    let runs = 5;
    let mut rows: Vec<Row> = Vec::new();

    // Instances sized so the graphs have hundreds to tens of thousands of
    // nodes — the regime the verifier and the experiments actually run in,
    // where interning rather than constant overhead dominates.
    let instances: [(&'static str, pp_population::Protocol, [u64; 2]); 3] = [
        ("example-4.2(n=3)", leaders_n::example_4_2(3), [20, 40]),
        ("flock-unary(n=5)", flock::flock_of_birds_unary(5), [20, 30]),
        (
            "binary-threshold(n=6)",
            threshold::binary_threshold_with_leader(6),
            [20, 30],
        ),
    ];
    for (family, protocol, agent_counts) in instances {
        for agents in agent_counts {
            let initial = protocol.initial_config_with_count(agents);
            let net = protocol.net();
            let dense_nodes = Analysis::new(net)
                .reachability([initial.clone()])
                .limits(limits)
                .run()
                .len();
            let sparse_nodes = sparse_reference_exploration(net, [initial.clone()], &limits)
                .0
                .len();
            assert_eq!(
                dense_nodes, sparse_nodes,
                "representations disagree on {family}"
            );
            // Cold sessions per sample: the timed cost includes the
            // compile, matching the historical one-shot entry point.
            let dense_ns = median_ns(runs, || {
                Analysis::new(net)
                    .reachability([initial.clone()])
                    .limits(limits)
                    .run()
                    .len()
            });
            let sparse_ns = median_ns(runs, || {
                sparse_reference_exploration(net, [initial.clone()], &limits)
                    .0
                    .len()
            });
            rows.push(Row {
                family,
                agents,
                nodes: dense_nodes,
                sparse_ns,
                dense_ns,
            });
        }
    }

    let mut table = Table::new([
        "protocol",
        "agents",
        "nodes",
        "sparse (ms)",
        "dense (ms)",
        "speedup",
    ]);
    for row in &rows {
        table.row([
            row.family.to_owned(),
            row.agents.to_string(),
            row.nodes.to_string(),
            fmt_f64(row.sparse_ns as f64 / 1e6),
            fmt_f64(row.dense_ns as f64 / 1e6),
            fmt_f64(row.sparse_ns as f64 / row.dense_ns.max(1) as f64),
        ]);
    }
    table.print("Sparse vs dense exploration (reachability graph construction)");

    let mut json = String::from("[\n");
    for (i, row) in rows.iter().enumerate() {
        json.push_str(&format!(
            "  {{\"family\": \"{}\", \"agents\": {}, \"nodes\": {}, \"sparse_ns\": {}, \"dense_ns\": {}, \"speedup\": {:.3}}}{}\n",
            row.family,
            row.agents,
            row.nodes,
            row.sparse_ns,
            row.dense_ns,
            row.sparse_ns as f64 / row.dense_ns.max(1) as f64,
            if i + 1 == rows.len() { "" } else { "," }
        ));
    }
    json.push_str("]\n");
    let path = "BENCH_sparse_dense.json";
    match std::fs::write(path, &json) {
        Ok(()) => println!("wrote {path}"),
        Err(error) => eprintln!("could not write {path}: {error}"),
    }
}
