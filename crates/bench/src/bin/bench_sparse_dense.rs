//! Sparse-vs-dense exploration ablation (E12 companion).
//!
//! Times full reachability-graph construction on the dense interned engine
//! against the sparse `BTreeMap` reference path for catalog protocols,
//! prints the comparison table and writes the numbers to
//! `BENCH_sparse_dense.json` so the speedup is tracked across PRs. The
//! dense engine stores rows packed (see `pp_petri::packed`); the
//! `bytes_per_node` column reports the stored arena bytes per node under
//! the active layout.
//!
//! `--check` skips the timing and instead verifies the packed-row
//! invariant end to end: for every instance, builds with packing enabled
//! (sequential and parallel) and with packing disabled must be
//! `identical_to` each other bit for bit. Any divergence exits nonzero.
//! It also reports the packed-vs-unpacked compaction factor, failing if
//! the catalog protocols do not compact at least 2x.

use pp_bench::{fmt_f64, Table};
use pp_petri::explore::sparse_reference_exploration;
use pp_petri::packed::set_packed_enabled;
use pp_petri::{Analysis, ExplorationLimits, Parallelism};
use pp_protocols::{flock, leaders_n, threshold};
use std::time::Instant;

struct Row {
    family: &'static str,
    agents: u64,
    nodes: usize,
    bytes_per_node: usize,
    sparse_ns: u128,
    dense_ns: u128,
}

/// Median wall-clock nanoseconds of `runs` executions of `f`.
fn median_ns<F: FnMut() -> usize>(runs: usize, mut f: F) -> u128 {
    let mut samples: Vec<u128> = (0..runs)
        .map(|_| {
            let start = Instant::now();
            std::hint::black_box(f());
            start.elapsed().as_nanos()
        })
        .collect();
    samples.sort_unstable();
    samples[samples.len() / 2]
}

type Instances = [(&'static str, pp_population::Protocol, [u64; 2]); 3];

// Instances sized so the graphs have hundreds to tens of thousands of
// nodes — the regime the verifier and the experiments actually run in,
// where interning rather than constant overhead dominates.
fn instances() -> Instances {
    [
        ("example-4.2(n=3)", leaders_n::example_4_2(3), [20, 40]),
        ("flock-unary(n=5)", flock::flock_of_birds_unary(5), [20, 30]),
        (
            "binary-threshold(n=6)",
            threshold::binary_threshold_with_leader(6),
            [20, 30],
        ),
    ]
}

/// Packed-vs-unpacked bit-identity sweep. Builds every instance three
/// ways — packed sequential, packed parallel, unpacked sequential — and
/// demands the graphs be `identical_to` each other. Returns whether all
/// checks passed. The gate flips are safe here: benches are their own
/// process and `--check` runs instead of, never alongside, the timing.
fn run_check(limits: &ExplorationLimits) -> bool {
    let mut ok = true;
    for (family, protocol, agent_counts) in instances() {
        let net = protocol.net();
        for agents in agent_counts {
            let initial = protocol.initial_config_with_count(agents);

            set_packed_enabled(true);
            let packed_seq = Analysis::new(net)
                .reachability([initial.clone()])
                .limits(*limits)
                .run();
            let packed_par = Analysis::new(net)
                .parallelism(Parallelism::Parallel(3))
                .reachability([initial.clone()])
                .limits(*limits)
                .run();
            set_packed_enabled(false);
            let unpacked = Analysis::new(net)
                .reachability([initial.clone()])
                .limits(*limits)
                .run();
            set_packed_enabled(true);

            if !packed_seq.identical_to(&packed_par) {
                eprintln!("CHECK FAILED: {family} at {agents} agents: packed parallel build diverges from packed sequential");
                ok = false;
            }
            if !packed_seq.identical_to(&unpacked) || !unpacked.identical_to(&packed_seq) {
                eprintln!(
                    "CHECK FAILED: {family} at {agents} agents: packed and unpacked builds diverge"
                );
                ok = false;
            }
            let compaction =
                unpacked.bytes_per_node() as f64 / packed_seq.bytes_per_node().max(1) as f64;
            println!(
                "{family} at {agents} agents: {} nodes, packed {} B/node vs unpacked {} B/node ({compaction:.1}x)",
                packed_seq.len(),
                packed_seq.bytes_per_node(),
                unpacked.bytes_per_node(),
            );
            if compaction < 2.0 {
                eprintln!(
                    "CHECK FAILED: {family} at {agents} agents: compaction {compaction:.2}x below the 2x floor"
                );
                ok = false;
            }
        }
    }
    ok
}

fn main() {
    let limits = ExplorationLimits::default();
    if std::env::args().any(|arg| arg == "--check") {
        if run_check(&limits) {
            println!("packed-vs-unpacked checks passed (bit-identical graphs, >=2x compaction)");
            return;
        }
        eprintln!("packed-vs-unpacked checks FAILED");
        std::process::exit(1);
    }

    let runs = 5;
    let mut rows: Vec<Row> = Vec::new();

    for (family, protocol, agent_counts) in instances() {
        for agents in agent_counts {
            let initial = protocol.initial_config_with_count(agents);
            let net = protocol.net();
            let reference = Analysis::new(net)
                .reachability([initial.clone()])
                .limits(limits)
                .run();
            let dense_nodes = reference.len();
            let bytes_per_node = reference.bytes_per_node();
            drop(reference);
            let sparse_nodes = sparse_reference_exploration(net, [initial.clone()], &limits)
                .0
                .len();
            assert_eq!(
                dense_nodes, sparse_nodes,
                "representations disagree on {family}"
            );
            // Cold sessions per sample: the timed cost includes the
            // compile, matching the historical one-shot entry point.
            let dense_ns = median_ns(runs, || {
                Analysis::new(net)
                    .reachability([initial.clone()])
                    .limits(limits)
                    .run()
                    .len()
            });
            let sparse_ns = median_ns(runs, || {
                sparse_reference_exploration(net, [initial.clone()], &limits)
                    .0
                    .len()
            });
            rows.push(Row {
                family,
                agents,
                nodes: dense_nodes,
                bytes_per_node,
                sparse_ns,
                dense_ns,
            });
        }
    }

    let mut table = Table::new([
        "protocol",
        "agents",
        "nodes",
        "B/node",
        "sparse (ms)",
        "dense (ms)",
        "speedup",
    ]);
    for row in &rows {
        table.row([
            row.family.to_owned(),
            row.agents.to_string(),
            row.nodes.to_string(),
            row.bytes_per_node.to_string(),
            fmt_f64(row.sparse_ns as f64 / 1e6),
            fmt_f64(row.dense_ns as f64 / 1e6),
            fmt_f64(row.sparse_ns as f64 / row.dense_ns.max(1) as f64),
        ]);
    }
    table.print("Sparse vs dense exploration (reachability graph construction)");

    let mut json = String::from("[\n");
    for (i, row) in rows.iter().enumerate() {
        json.push_str(&format!(
            "  {{\"family\": \"{}\", \"agents\": {}, \"nodes\": {}, \"bytes_per_node\": {}, \"sparse_ns\": {}, \"dense_ns\": {}, \"speedup\": {:.3}}}{}\n",
            row.family,
            row.agents,
            row.nodes,
            row.bytes_per_node,
            row.sparse_ns,
            row.dense_ns,
            row.sparse_ns as f64 / row.dense_ns.max(1) as f64,
            if i + 1 == rows.len() { "" } else { "," }
        ));
    }
    json.push_str("]\n");
    let path = "BENCH_sparse_dense.json";
    match std::fs::write(path, &json) {
        Ok(()) => println!("wrote {path}"),
        Err(error) => eprintln!("could not write {path}: {error}"),
    }
}
