//! Experiment E7 — Theorem 6.1: bottom witnesses and their bound.

use pp_bench::{fmt_f64, Table};
use pp_petri::bottom::{find_bottom_witness, theorem_6_1_bound};
use pp_petri::ExplorationLimits;
use pp_population::StateId;
use pp_protocols::{flock, leaders_n, modulo, threshold};
use std::collections::BTreeSet;

fn main() {
    let mut table = Table::new([
        "protocol",
        "|P'|",
        "witness",
        "|σ|",
        "|w|",
        "|Q|",
        "pumped places",
        "component size",
        "log10(Theorem 6.1 bound b)",
    ]);
    let limits = ExplorationLimits::with_max_configurations(2_000);
    let entries = [
        ("example-4.2(n=2)", leaders_n::example_4_2(2)),
        ("example-4.2(n=3)", leaders_n::example_4_2(3)),
        ("flock-unary(n=3)", flock::flock_of_birds_unary(3)),
        ("flock-doubling(k=2)", flock::flock_of_birds_doubling(2)),
        ("modulo(m=2,r=0)", modulo::modulo_with_leader(2, 0)),
        ("modulo(m=3,r=1)", modulo::modulo_with_leader(3, 1)),
        (
            "binary-threshold(n=5)",
            threshold::binary_threshold_with_leader(5),
        ),
    ];
    for (name, protocol) in entries {
        let non_initial: BTreeSet<StateId> = protocol
            .states()
            .filter(|s| !protocol.initial_states().contains(s))
            .collect();
        let restricted = protocol.net().restrict(&non_initial);
        let leaders = protocol.leaders().restrict(&non_initial);
        let bound = theorem_6_1_bound(&restricted, &leaders);
        match find_bottom_witness(&restricted, &leaders, &limits) {
            Some(witness) => {
                table.row([
                    name.to_owned(),
                    restricted.num_places().to_string(),
                    "found".to_owned(),
                    witness.sigma.len().to_string(),
                    witness.w.len().to_string(),
                    witness.q_places.len().to_string(),
                    witness.pumped_places.len().to_string(),
                    witness.component_size.to_string(),
                    fmt_f64(bound.approx_log10()),
                ]);
            }
            None => {
                table.row([
                    name.to_owned(),
                    restricted.num_places().to_string(),
                    "not found (limits)".to_owned(),
                    "—".into(),
                    "—".into(),
                    "—".into(),
                    "—".into(),
                    "—".into(),
                    fmt_f64(bound.approx_log10()),
                ]);
            }
        }
    }
    table.print("E7 — Theorem 6.1 bottom witnesses on the protocol catalog (T|P' from ρ_L|P')");
    println!(
        "Paper claim (Theorem 6.1): witnesses with all quantities bounded by b exist; measured \
         witnesses are minuscule compared to the doubly-exponential bound."
    );
}
