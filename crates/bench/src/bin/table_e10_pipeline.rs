//! Experiment E10 — the Section 8 pipeline on concrete protocols.

use pp_bench::{fmt_f64, Table};
use pp_petri::ExplorationLimits;
use pp_protocols::{flock, leaders_n, modulo, threshold};
use pp_statecomplexity::analyze_protocol;

fn main() {
    let mut table = Table::new([
        "protocol",
        "|P|",
        "width",
        "leaders",
        "witness",
        "pumped",
        "|S|",
        "|E|",
        "total cycle",
        "shrunk cycles",
        "log10(Thm 4.3 bound)",
        "log10(b)",
    ]);
    let limits = ExplorationLimits::with_max_configurations(800);
    let entries = [
        ("example-4.2(n=2)", leaders_n::example_4_2(2)),
        ("example-4.2(n=4)", leaders_n::example_4_2(4)),
        ("flock-unary(n=3)", flock::flock_of_birds_unary(3)),
        ("flock-doubling(k=2)", flock::flock_of_birds_doubling(2)),
        ("modulo(m=2,r=0)", modulo::modulo_with_leader(2, 0)),
        (
            "binary-threshold(n=5)",
            threshold::binary_threshold_with_leader(5),
        ),
    ];
    for (name, protocol) in entries {
        let report = analyze_protocol(&protocol, &limits);
        table.row([
            name.to_owned(),
            report.states.to_string(),
            report.width.to_string(),
            report.leaders.to_string(),
            if report.witness.is_some() {
                "found"
            } else {
                "—"
            }
            .to_owned(),
            report
                .witness
                .as_ref()
                .map_or("—".into(), |w| w.pumped_places.len().to_string()),
            report.control_states.map_or("—".into(), |v| v.to_string()),
            report.control_edges.map_or("—".into(), |v| v.to_string()),
            report
                .total_cycle_length
                .map_or("—".into(), |v| v.to_string()),
            report
                .shrunk
                .as_ref()
                .map_or("—".into(), |s| s.cycle_count.to_string()),
            fmt_f64(report.theorem_4_3_bound.approx_log10()),
            fmt_f64(report.theorem_6_1_bound.approx_log10()),
        ]);
    }
    table.print("E10 — the Section 8 lower-bound pipeline, step by step");
    println!(
        "Paper claim (Section 8): the pipeline objects (bottom witness, control component, total \
         cycle, shrunken multicycle) exist for every protocol; the bound they certify is the \
         Theorem 4.3 value in the last column."
    );
}
