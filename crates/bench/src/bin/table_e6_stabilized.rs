//! Experiment E6 — Lemma 5.4: stabilized configurations are characterized by
//! their small values.

use pp_bench::Table;
use pp_multiset::Multiset;
use pp_petri::rackoff::{small_value_places, stabilization_threshold};
use pp_petri::stabilized::StabilityChecker;
use pp_population::{Output, StateId};
use pp_protocols::leaders_n;

fn main() {
    let protocol = leaders_n::example_4_2(2);
    let net = protocol.net();
    let zero_states = protocol.states_with_output(Output::Zero);
    let checker = StabilityChecker::new(net, &zero_states);

    println!(
        "Lemma 5.4 threshold h = ‖T‖∞(1+‖T‖∞)^(|P|^|P|) for Example 4.2: log10(h) ≈ {:.1}",
        stabilization_threshold(net).approx_log10()
    );

    // Enumerate every configuration with at most `max_agents` agents, find the
    // stabilized ones, then check the lemma's transfer property with a small
    // empirical threshold: every candidate that agrees with a stabilized
    // configuration on its small-valued places must itself be stabilized.
    let max_agents = 4u64;
    let states: Vec<StateId> = protocol.states().collect();
    let mut configs = vec![Multiset::new()];
    for _ in 0..max_agents {
        let mut next = Vec::new();
        for c in &configs {
            for s in &states {
                let mut bigger = c.clone();
                bigger.add_to(*s, 1);
                next.push(bigger);
            }
        }
        configs.extend(next);
    }
    configs.sort();
    configs.dedup();

    let stabilized: Vec<&Multiset<StateId>> = configs
        .iter()
        .filter(|c| checker.is_stabilized(c))
        .collect();

    let mut table = Table::new([
        "empirical threshold",
        "stabilized configs (≤4 agents)",
        "transfer pairs checked",
        "transfer violations",
    ]);
    for threshold in [1u64, 2, 3, 5] {
        let mut checked = 0u64;
        let mut violations = 0u64;
        for rho in &stabilized {
            let region = small_value_places(net, rho, threshold);
            for candidate in &configs {
                if candidate.restrict(&region).le(&rho.restrict(&region)) {
                    checked += 1;
                    if !checker.is_stabilized(candidate) {
                        violations += 1;
                    }
                }
            }
        }
        table.row([
            threshold.to_string(),
            stabilized.len().to_string(),
            checked.to_string(),
            violations.to_string(),
        ]);
    }
    table.print("E6 — Lemma 5.4 transfer property on Example 4.2 (n = 2)");
    println!(
        "Paper claim (Lemma 5.4): with h at least the stabilization threshold, zero violations \
         can occur. The experiment shows the property already holds empirically at tiny \
         thresholds for this net (the paper's h is a sound, astronomically larger, worst case)."
    );
}
