//! Experiment E11 — the state-complexity landscape: every construction of the
//! catalog vs both bounds.

use pp_bench::{fmt_f64, Table};
use pp_protocols::flock::{doubling_state_count, unary_state_count};
use pp_protocols::threshold::binary_threshold_state_count;
use pp_statecomplexity::bounds::log2_of_threshold;
use pp_statecomplexity::{bej_upper_bound_states, corollary_4_4_min_states};

fn main() {
    let mut table = Table::new([
        "n",
        "example-4.1 (width n)",
        "example-4.2 (n leaders)",
        "flock-unary",
        "flock-doubling (n = 2^k)",
        "binary-threshold (1 leader)",
        "BEJ O(log log n) [6]",
        "lower bound Ω((log log n)^0.49)",
    ]);
    for k in [2u32, 4, 8, 16, 32] {
        let n = 1u64 << k;
        let log2_n = log2_of_threshold(n);
        table.row([
            format!("2^{k}"),
            "2".to_owned(),
            "6".to_owned(),
            unary_state_count(n).to_string(),
            doubling_state_count(k).to_string(),
            binary_threshold_state_count(n).to_string(),
            fmt_f64(bej_upper_bound_states(log2_n)),
            fmt_f64(corollary_4_4_min_states(log2_n, 2, 0.49)),
        ]);
    }
    table.print("E11 — states needed to decide (i ≥ n), by construction");
    println!(
        "Paper context (Section 4 + Section 9): with unbounded width or leaders, constant states \
         suffice (columns 2–3) — which is why the lower bound fixes both; among bounded-width, \
         bounded-leader protocols the constructions range from Θ(n) down to Θ(log n), and the \
         paper's lower bound shows no construction can go below (log log n)^h."
    );
}
