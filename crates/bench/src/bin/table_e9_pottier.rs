//! Experiment E9 — Lemma 7.3 / Pottier: Hilbert bases and multicycle shrinking.

use pp_bench::Table;
use pp_diophantine::{pottier_bound, HilbertConfig, LinearSystem};
use pp_multiset::Multiset;
use pp_petri::control::ControlNet;
use pp_petri::cycles::{lemma_7_3_size_bound, shrink_multicycle};
use pp_petri::ExplorationLimits;
use pp_petri::{PetriNet, Transition};
use std::collections::BTreeSet;

fn main() {
    // Part a: Pottier's bound on representative homogeneous systems.
    let mut basis_table = Table::new([
        "system (rows × cols)",
        "hilbert basis size",
        "max ‖x‖₁ in basis",
        "Pottier bound",
    ]);
    let systems = vec![
        ("x = y", vec![vec![1, -1]]),
        ("x + y = 2z", vec![vec![1, 1, -2]]),
        ("3x = y + z", vec![vec![3, -1, -1]]),
        ("x+2y=3z, 2x=y+z", vec![vec![1, 2, -3], vec![2, -1, -1]]),
        ("5x + 7y = 3z + 11w", vec![vec![5, 7, -3, -11]]),
    ];
    for (label, rows) in systems {
        let shape = format!("{} × {} ({label})", rows.len(), rows[0].len());
        let system = LinearSystem::from_rows(rows).unwrap();
        let basis = system
            .hilbert_basis(&HilbertConfig::default())
            .expect("basis computed");
        let max_norm = basis
            .iter()
            .map(|b| b.iter().sum::<u64>())
            .max()
            .unwrap_or(0);
        basis_table.row([
            shape,
            basis.len().to_string(),
            max_norm.to_string(),
            pottier_bound(&system).to_string(),
        ]);
    }
    basis_table.print("E9a — Hilbert bases vs Pottier's norm bound");

    // Part b: Lemma 7.3 shrinking on a two-counter control net.
    let net = PetriNet::from_transitions([
        Transition::new(
            Multiset::unit("s0"),
            Multiset::from_pairs([("s1", 1u64), ("x", 1)]),
        ),
        Transition::new(
            Multiset::unit("s1"),
            Multiset::from_pairs([("s0", 1u64), ("y", 1)]),
        ),
        Transition::new(
            Multiset::from_pairs([("s1", 1u64), ("y", 1)]),
            Multiset::unit("s0"),
        ),
    ]);
    let q: BTreeSet<&str> = ["s0", "s1"].into_iter().collect();
    let control = ControlNet::from_component(
        &net,
        &q,
        &Multiset::unit("s0"),
        &ExplorationLimits::default(),
    )
    .expect("control net");
    let edge_of = |t: usize| {
        control
            .edges()
            .iter()
            .position(|e| e.transition == t)
            .unwrap()
    };
    let mut shrink_table = Table::new([
        "original multicycle |Θ|",
        "Δ(Θ) on x",
        "Δ(Θ) on y",
        "k",
        "|Θ'| (cycles)",
        "Δ(Θ') on x",
        "Δ(Θ') on y",
        "Lemma 7.3 size bound",
    ]);
    for (copies_plus, copies_minus, k) in [(50u64, 40u64, 10u64), (500, 400, 50), (5000, 4000, 100)]
    {
        let mut parikh = vec![0u64; control.num_edges()];
        for &e in &[edge_of(0), edge_of(1)] {
            parikh[e] += copies_plus;
        }
        for &e in &[edge_of(0), edge_of(2)] {
            parikh[e] += copies_minus;
        }
        let original = control.displacement_of_parikh(&parikh);
        let shrunk = shrink_multicycle(
            &control,
            &parikh,
            &BTreeSet::new(),
            k,
            &HilbertConfig::default(),
        )
        .expect("shrinking succeeds");
        shrink_table.row([
            parikh.iter().sum::<u64>().to_string(),
            original.get(&"x").to_string(),
            original.get(&"y").to_string(),
            k.to_string(),
            shrunk.cycle_count.to_string(),
            shrunk.displacement.get(&"x").to_string(),
            shrunk.displacement.get(&"y").to_string(),
            lemma_7_3_size_bound(&control).to_string(),
        ]);
    }
    shrink_table.print("E9b — Lemma 7.3: multicycles shrink while preserving signs");
    println!(
        "Paper claim (Lemma 7.3, via Pottier [12]): minimal solutions obey the norm bound and \
         arbitrarily large multicycles can be replaced by sign-preserving ones of bounded size."
    );
}
