//! Analysis-server throughput: concurrent clients driving catalog jobs
//! through `pp_serve` over real TCP, against the in-process batch layer
//! as the no-wire baseline.
//!
//! The workload is serving-shaped: several clients submit overlapping
//! catalog queries (same protocol, same and different agent counts), so
//! the server's session cache sees both cold compiles and hot reuse.
//!
//! `--check` additionally enforces the server's determinism contract and
//! exits nonzero on any violation:
//!
//! * every response's fingerprint equals a solo in-process [`Batch`] run
//!   at the response's `final_limits` — under a sequential **and** a
//!   2-way parallel runner, with 1 **and** 3 concurrent clients;
//! * a truncate-then-resume round trip (small budget, then a raised one
//!   against the cached session) lands on the same fingerprint as a cold
//!   direct run at the final budget.
//!
//! Results land in `BENCH_server_throughput.json` (jobs/sec, p95 client
//! latency, mean stored bytes per node as reported by the responses).
//! Timings are informational on throttled CI hosts; the fingerprint
//! gates are what CI enforces.

use pp_bench::{fmt_f64, Table};
use pp_petri::batch::{Batch, BatchJob};
use pp_petri::{ExplorationLimits, Parallelism};
use pp_population::StateId;
use pp_protocols::batch::spread_input;
use pp_protocols::catalog;
use pp_serve::fingerprint::{hex, outcome_fingerprint};
use pp_serve::json::Json;
use pp_serve::server::{Server, ServerConfig, ServerHandle};
use pp_serve::Client;
use std::time::Instant;

/// One catalog job of the workload.
#[derive(Clone, Copy)]
struct Work {
    family: &'static str,
    n: u64,
    agents: u64,
}

/// The per-client job list: overlapping identities so the session cache
/// sees both cold and hot paths.
const WORKLOAD: [Work; 6] = [
    Work {
        family: "majority",
        n: 2,
        agents: 6,
    },
    Work {
        family: "flock-unary",
        n: 3,
        agents: 6,
    },
    Work {
        family: "majority",
        n: 2,
        agents: 6,
    }, // repeat: hot session
    Work {
        family: "example-4.2",
        n: 2,
        agents: 5,
    },
    Work {
        family: "flock-unary",
        n: 3,
        agents: 8,
    },
    Work {
        family: "majority",
        n: 2,
        agents: 8,
    },
];

struct RunStats {
    /// Client-observed per-job latencies, microseconds.
    latencies_us: Vec<u64>,
    /// (work, final_limits, fingerprint) of every response, for `--check`.
    responses: Vec<(Work, ExplorationLimits, String)>,
    /// `bytes_per_node` passthrough from reachability responses.
    bytes_per_node: Vec<u64>,
    wall_ns: u128,
}

fn submit_frame(work: Work, budget: Option<usize>) -> Json {
    let mut pairs = vec![
        ("cmd".to_string(), Json::str("submit")),
        ("protocol".to_string(), Json::str(work.family)),
        ("n".to_string(), Json::uint(work.n)),
        ("agents".to_string(), Json::uint(work.agents)),
    ];
    if let Some(budget) = budget {
        pairs.push(("budget".to_string(), Json::uint(budget as u64)));
    }
    Json::object(pairs)
}

fn limits_of(frame: &Json) -> ExplorationLimits {
    let limits = frame.get("final_limits").expect("final_limits");
    ExplorationLimits {
        max_configurations: limits
            .get("max_configurations")
            .and_then(Json::as_usize)
            .expect("max_configurations"),
        max_agents: limits.get("max_agents").and_then(Json::as_u64),
        max_depth: limits.get("max_depth").and_then(Json::as_usize),
    }
}

/// Drives `clients` concurrent connections through the workload.
fn drive(handle: &ServerHandle, clients: usize) -> RunStats {
    let addr = handle.addr();
    let start = Instant::now();
    let mut threads = Vec::new();
    for _ in 0..clients {
        threads.push(std::thread::spawn(move || {
            let mut client = Client::connect(addr).expect("connect");
            let mut out = Vec::new();
            for work in WORKLOAD {
                let t0 = Instant::now();
                let answer = client.submit(&submit_frame(work, None)).expect("submit");
                let latency = u64::try_from(t0.elapsed().as_micros()).unwrap_or(u64::MAX);
                assert_eq!(
                    answer.result.get("ok"),
                    Some(&Json::Bool(true)),
                    "job failed: {}",
                    answer.result
                );
                let fingerprint = answer
                    .result
                    .get("fingerprint")
                    .and_then(Json::as_str)
                    .expect("fingerprint")
                    .to_string();
                let limits = limits_of(&answer.result);
                let bytes = answer.result.get("bytes_per_node").and_then(Json::as_u64);
                out.push((work, limits, fingerprint, latency, bytes));
            }
            out
        }));
    }
    let mut stats = RunStats {
        latencies_us: Vec::new(),
        responses: Vec::new(),
        bytes_per_node: Vec::new(),
        wall_ns: 0,
    };
    for thread in threads {
        for (work, limits, fingerprint, latency, bytes) in thread.join().expect("client thread") {
            stats.latencies_us.push(latency);
            stats.responses.push((work, limits, fingerprint));
            if let Some(bytes) = bytes {
                stats.bytes_per_node.push(bytes);
            }
        }
    }
    stats.wall_ns = start.elapsed().as_nanos();
    stats
}

/// A solo in-process run of the same job at the reported limits.
fn direct_fingerprint(work: Work, limits: ExplorationLimits, runner: Parallelism) -> String {
    let entry = catalog::all(work.n)
        .into_iter()
        .find(|e| e.family == work.family)
        .expect("catalog family");
    let protocol = entry.protocol;
    let net = protocol.net().clone();
    let initial = spread_input(&protocol, work.agents);
    let report = Batch::new()
        .parallelism(runner)
        .job(BatchJob::reachability("d", net.clone(), [initial]).limits(limits))
        .run();
    let places: Vec<StateId> = net.places().iter().copied().collect();
    hex(outcome_fingerprint(&report.jobs[0].outcome, &places))
}

fn check_responses(stats: &RunStats, runner: Parallelism, label: &str) -> bool {
    let mut ok = true;
    for (work, limits, fingerprint) in &stats.responses {
        let direct = direct_fingerprint(*work, *limits, runner);
        if *fingerprint != direct {
            eprintln!(
                "SERVER CHECK FAILED [{label}]: {}(n={})[{}] fingerprint {} != direct {} at {:?}",
                work.family, work.n, work.agents, fingerprint, direct, limits
            );
            ok = false;
        }
    }
    ok
}

/// The truncate-then-resume gate: a small budget, then a raised one
/// against the cached session, must land on the cold direct answer.
fn check_resume(handle: &ServerHandle, runner: Parallelism) -> bool {
    let work = Work {
        family: "flock-unary",
        n: 4,
        agents: 8,
    };
    let mut client = Client::connect(handle.addr()).expect("connect");
    let truncated = client
        .submit(&submit_frame(work, Some(5)))
        .expect("submit")
        .result;
    let session = truncated
        .get("session")
        .and_then(Json::as_str)
        .expect("session token")
        .to_string();
    if truncated.get("resumable") != Some(&Json::Bool(true)) {
        eprintln!("SERVER CHECK FAILED: truncated job not resumable: {truncated}");
        return false;
    }
    let resumed = client
        .submit(&Json::object([
            ("cmd".to_string(), Json::str("resume")),
            ("session".to_string(), Json::str(&session)),
            ("budget".to_string(), Json::uint(100_000)),
        ]))
        .expect("resume")
        .result;
    let fingerprint = resumed
        .get("fingerprint")
        .and_then(Json::as_str)
        .expect("fingerprint");
    let direct = direct_fingerprint(work, limits_of(&resumed), runner);
    if fingerprint != direct {
        eprintln!("SERVER CHECK FAILED: resumed fingerprint {fingerprint} != cold direct {direct}");
        return false;
    }
    true
}

fn p95(latencies: &mut [u64]) -> u64 {
    if latencies.is_empty() {
        return 0;
    }
    latencies.sort_unstable();
    latencies[(latencies.len() - 1) * 95 / 100]
}

struct Row {
    runner: &'static str,
    clients: usize,
    jobs: usize,
    jobs_per_sec: f64,
    p95_us: u64,
    bytes_per_node: f64,
}

fn main() {
    let check = std::env::args().any(|arg| arg == "--check");
    let mut rows: Vec<Row> = Vec::new();
    let mut ok = true;

    for (runner, runner_label) in [
        (Parallelism::Sequential, "seq"),
        (Parallelism::Parallel(2), "par(2)"),
    ] {
        for clients in [1usize, 3] {
            let handle = Server::spawn(ServerConfig {
                addr: "127.0.0.1:0".to_string(),
                runner,
                ..ServerConfig::default()
            })
            .expect("bind ephemeral port");
            let mut stats = drive(&handle, clients);
            if check {
                let label = format!("{runner_label}/{clients} clients");
                ok &= check_responses(&stats, runner, &label);
                ok &= check_resume(&handle, runner);
            }
            handle.shutdown();
            let jobs = stats.responses.len();
            let bytes_per_node = stats.bytes_per_node.iter().sum::<u64>() as f64
                / stats.bytes_per_node.len().max(1) as f64;
            rows.push(Row {
                runner: runner_label,
                clients,
                jobs,
                jobs_per_sec: jobs as f64 / (stats.wall_ns as f64 / 1e9),
                p95_us: p95(&mut stats.latencies_us),
                bytes_per_node,
            });
        }
    }

    let mut table = Table::new(["runner", "clients", "jobs", "jobs/s", "p95 (us)", "B/node"]);
    for row in &rows {
        table.row([
            row.runner.to_string(),
            row.clients.to_string(),
            row.jobs.to_string(),
            fmt_f64(row.jobs_per_sec),
            row.p95_us.to_string(),
            fmt_f64(row.bytes_per_node),
        ]);
    }
    table.print("Analysis-server throughput: concurrent TCP clients vs the batch layer");

    let mut json = String::from("[\n");
    for (i, row) in rows.iter().enumerate() {
        json.push_str(&format!(
            "  {{\"runner\": \"{}\", \"clients\": {}, \"jobs\": {}, \"jobs_per_sec\": {:.1}, \"p95_us\": {}, \"bytes_per_node\": {:.1}}}{}\n",
            row.runner,
            row.clients,
            row.jobs,
            row.jobs_per_sec,
            row.p95_us,
            row.bytes_per_node,
            if i + 1 == rows.len() { "" } else { "," }
        ));
    }
    json.push_str("]\n");
    let path = "BENCH_server_throughput.json";
    match std::fs::write(path, &json) {
        Ok(()) => println!("wrote {path}"),
        Err(error) => eprintln!("could not write {path}: {error}"),
    }
    if !ok {
        eprintln!("server determinism checks FAILED");
        std::process::exit(1);
    }
    println!(
        "server checks passed{}",
        if check {
            ": every response bit-identical to a solo batch run at its final_limits, \
             sequential and parallel runners, 1 and 3 clients, truncate-then-resume included"
        } else {
            " (run with --check for the bit-identity gates)"
        }
    );
}
