//! Session-reuse ablation: cold one-shot queries vs warm session re-queries
//! vs resumed-budget queries.
//!
//! The `Analysis` session exists so that serving-shaped workloads stop
//! paying the compile-and-re-explore tax on every query. This bench
//! quantifies the three tiers on the catalog's protocols:
//!
//! * **cold** — a fresh session per query: compile the net, explore from
//!   scratch (the historical one-shot entry points).
//! * **warm** — the same query against a session that already ran it: a
//!   cache hit returning the shared graph.
//! * **resumed** — the query against a session holding the graph truncated
//!   at *half* its node count: the arena and edge lists are reused and only
//!   the budget frontier re-expands
//!   ([`ReachabilityGraph::resume`](pp_petri::ReachabilityGraph::resume)).
//!
//! Every resumed graph is checked `identical_to` the cold one (the resume
//! correctness contract); any divergence — or a warm/resumed tier that is
//! not strictly faster than cold — exits nonzero, so the numbers in
//! `BENCH_session_reuse.json` stay honest.

use pp_bench::{fmt_f64, Table};
use pp_petri::{Analysis, ExplorationLimits, ReachabilityGraph};
use pp_population::{Protocol, StateId};
use std::time::Instant;

struct Row {
    family: &'static str,
    agents: u64,
    nodes: usize,
    /// Stored arena bytes per node under the active (packed) row layout.
    bytes_per_node: usize,
    truncated_nodes: usize,
    cold_ns: u128,
    warm_ns: u128,
    resumed_ns: u128,
}

/// Best (minimum) wall-clock nanoseconds over `runs` interleaved rounds,
/// with per-round setup excluded from the timing (the standard protocol of
/// this repo's benches on shared/throttled CI hosts).
fn main() {
    let runs = 9usize;
    let limits = ExplorationLimits::default();
    let instances: [(&'static str, Protocol, u64); 3] = [
        (
            "example-4.2(n=3)",
            pp_protocols::leaders_n::example_4_2(3),
            30,
        ),
        (
            "flock-unary(n=5)",
            pp_protocols::flock::flock_of_birds_unary(5),
            26,
        ),
        (
            "binary-threshold(n=6)",
            pp_protocols::threshold::binary_threshold_with_leader(6),
            30,
        ),
    ];

    let mut rows: Vec<Row> = Vec::new();
    let mut ok = true;
    for (family, protocol, agents) in instances {
        let net = protocol.net();
        let initial = protocol.initial_config_with_count(agents);

        // The reference cold build, and the half-size truncation the
        // resumed tier starts from.
        let cold_reference = Analysis::new(net)
            .reachability([initial.clone()])
            .limits(limits)
            .run();
        let nodes = cold_reference.len();
        let bytes_per_node = cold_reference.bytes_per_node();
        let small = ExplorationLimits::with_max_configurations((nodes / 2).max(1));
        let truncated_reference: ReachabilityGraph<StateId> = {
            let mut session = Analysis::new(net);
            let graph = session.reachability([initial.clone()]).limits(small).run();
            (*graph).clone()
        };
        let truncated_nodes = truncated_reference.len();

        // A session that already answered the query, for the warm tier.
        let mut warm_session = Analysis::new(net);
        drop(
            warm_session
                .reachability([initial.clone()])
                .limits(limits)
                .run(),
        );

        let mut cold_ns = u128::MAX;
        let mut warm_ns = u128::MAX;
        let mut resumed_ns = u128::MAX;
        for _ in 0..runs {
            // Cold: compile + full exploration.
            let start = Instant::now();
            let cold = Analysis::new(net)
                .reachability([initial.clone()])
                .limits(limits)
                .run();
            cold_ns = cold_ns.min(start.elapsed().as_nanos());
            std::hint::black_box(cold.len());

            // Warm: cache hit on the pre-queried session.
            let start = Instant::now();
            let warm = warm_session
                .reachability([initial.clone()])
                .limits(limits)
                .run();
            warm_ns = warm_ns.min(start.elapsed().as_nanos());
            std::hint::black_box(warm.len());
            drop(warm);

            // Resumed: extend a half-budget truncation in place (the
            // per-round clone of the truncated graph is setup, not work —
            // it happens before the timer starts).
            let mut graph = truncated_reference.clone();
            let start = Instant::now();
            graph.resume(&limits);
            resumed_ns = resumed_ns.min(start.elapsed().as_nanos());
            std::hint::black_box(graph.len());
            if !graph.identical_to(&cold_reference) {
                eprintln!("RESUME CHECK FAILED: {family} at {agents} agents");
                ok = false;
            }
        }

        if warm_ns >= cold_ns || resumed_ns >= cold_ns {
            eprintln!(
                "SPEEDUP CHECK FAILED: {family} at {agents} agents \
                 (cold {cold_ns} ns, warm {warm_ns} ns, resumed {resumed_ns} ns)"
            );
            ok = false;
        }
        rows.push(Row {
            family,
            agents,
            nodes,
            bytes_per_node,
            truncated_nodes,
            cold_ns,
            warm_ns,
            resumed_ns,
        });
    }

    let mut table = Table::new([
        "protocol",
        "agents",
        "nodes",
        "B/node",
        "resume from",
        "cold (ms)",
        "warm (ms)",
        "resumed (ms)",
        "warm speedup",
        "resumed speedup",
    ]);
    for row in &rows {
        table.row([
            row.family.to_owned(),
            row.agents.to_string(),
            row.nodes.to_string(),
            row.bytes_per_node.to_string(),
            row.truncated_nodes.to_string(),
            fmt_f64(row.cold_ns as f64 / 1e6),
            fmt_f64(row.warm_ns as f64 / 1e6),
            fmt_f64(row.resumed_ns as f64 / 1e6),
            fmt_f64(row.cold_ns as f64 / row.warm_ns.max(1) as f64),
            fmt_f64(row.cold_ns as f64 / row.resumed_ns.max(1) as f64),
        ]);
    }
    table.print(
        "Session reuse: cold one-shot query vs warm session re-query vs resumed half-budget query",
    );

    let mut json = String::from("[\n");
    for (i, row) in rows.iter().enumerate() {
        json.push_str(&format!(
            "  {{\"family\": \"{}\", \"agents\": {}, \"nodes\": {}, \"bytes_per_node\": {}, \"truncated_nodes\": {}, \"cold_ns\": {}, \"warm_ns\": {}, \"resumed_ns\": {}, \"warm_speedup\": {:.3}, \"resumed_speedup\": {:.3}}}{}\n",
            row.family,
            row.agents,
            row.nodes,
            row.bytes_per_node,
            row.truncated_nodes,
            row.cold_ns,
            row.warm_ns,
            row.resumed_ns,
            row.cold_ns as f64 / row.warm_ns.max(1) as f64,
            row.cold_ns as f64 / row.resumed_ns.max(1) as f64,
            if i + 1 == rows.len() { "" } else { "," }
        ));
    }
    json.push_str("]\n");
    let path = "BENCH_session_reuse.json";
    match std::fs::write(path, &json) {
        Ok(()) => println!("wrote {path}"),
        Err(error) => eprintln!("could not write {path}: {error}"),
    }
    if !ok {
        eprintln!("session reuse checks FAILED");
        std::process::exit(1);
    }
    println!("session reuse checks passed (warm and resumed strictly faster than cold; resumed graphs identical to cold)");
}
