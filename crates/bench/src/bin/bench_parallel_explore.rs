//! Parallel-vs-sequential exploration ablation (E13).
//!
//! Times full reachability-graph construction on the **pipelined** sharded
//! parallel engine against the sequential dense engine for the catalog's
//! largest instances, prints the comparison table and writes the numbers
//! to `BENCH_parallel_explore.json` so the speedup is tracked across PRs.
//! Each instance is timed three ways: sequential, `Parallel(1)` (the full
//! pipeline machinery with zero spawned workers — its gap to sequential is
//! the engine's pure overhead, the number the ≤5% budget in DESIGN.md
//! refers to), and `Parallel(auto)`. Every timed triple is also checked
//! for graph equality — the parallel engine's renumbering contract.
//!
//! `--check` skips the timing loops and instead verifies, on moderate
//! instances, that the pipelined engine produces node-for-node,
//! edge-for-edge identical graphs for worker counts 1–4, exiting nonzero
//! on any divergence (wired into CI's single-thread and odd-worker jobs).

use pp_bench::{fmt_f64, Table};
use pp_petri::{Analysis, ExplorationLimits, Parallelism};
use pp_population::Protocol;
use pp_protocols::{flock, leaders_n, threshold};
use std::time::Instant;

struct Row {
    family: &'static str,
    agents: u64,
    nodes: usize,
    /// Stored arena bytes per node under the active (packed) row layout.
    bytes_per_node: usize,
    seq_ns: u128,
    /// `Parallel(1)`: the pipelined machinery with zero spawned workers —
    /// its distance from `seq_ns` is the engine's pure overhead.
    par1_ns: u128,
    par_ns: u128,
}

/// Best (minimum) wall-clock nanoseconds of `runs` *interleaved* executions
/// of each workload.
///
/// The workloads are timed round-robin and the minimum is kept: on shared
/// or CPU-throttled hosts (this repo's CI containers are both), individual
/// samples vary by multiples, and the interleaved minimum is the standard
/// way to compare workloads under the same — best available — conditions.
fn min_ns_interleaved<const N: usize>(
    runs: usize,
    workloads: &mut [&mut dyn FnMut() -> usize; N],
) -> [u128; N] {
    let mut best = [u128::MAX; N];
    for _ in 0..runs {
        for (workload, best) in workloads.iter_mut().zip(best.iter_mut()) {
            let start = Instant::now();
            std::hint::black_box(workload());
            *best = (*best).min(start.elapsed().as_nanos());
        }
    }
    best
}

/// The `--check` instances: moderate graphs, every worker count the CI
/// matrix pins (1 = spawn-free pipeline, 2 = one worker overlapping the
/// commits, 3 = odd count, 4 = oversubscribed on the 2-vCPU sandbox).
fn run_check(instances: &[(&'static str, Protocol, Vec<u64>)]) -> bool {
    let limits = ExplorationLimits::default();
    let mut ok = true;
    for (family, protocol, agent_counts) in instances {
        for &agents in agent_counts {
            let initial = protocol.initial_config_with_count(agents);
            let sequential = Analysis::new(protocol.net())
                .reachability([initial.clone()])
                .limits(limits)
                .run();
            for workers in [1usize, 2, 3, 4] {
                let parallel = Analysis::new(protocol.net())
                    .reachability([initial.clone()])
                    .limits(limits)
                    .parallelism(Parallelism::Parallel(workers))
                    .run();
                if sequential.identical_to(&parallel) {
                    println!(
                        "check ok: {family} agents={agents} workers={workers} nodes={}",
                        sequential.len()
                    );
                } else {
                    eprintln!(
                        "CHECK FAILED: {family} agents={agents} workers={workers}: \
                         sequential {} nodes vs parallel {} nodes",
                        sequential.len(),
                        parallel.len()
                    );
                    ok = false;
                }
            }
        }
    }
    ok
}

fn main() {
    let check_only = std::env::args().any(|arg| arg == "--check");
    let auto = Parallelism::auto();
    let host_threads = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);

    if check_only {
        let instances: Vec<(&'static str, Protocol, Vec<u64>)> = vec![
            ("example-4.2(n=3)", leaders_n::example_4_2(3), vec![20]),
            ("flock-unary(n=5)", flock::flock_of_birds_unary(5), vec![22]),
            (
                "binary-threshold(n=6)",
                threshold::binary_threshold_with_leader(6),
                vec![25],
            ),
        ];
        if run_check(&instances) {
            println!("parallel/sequential equivalence check passed");
        } else {
            eprintln!("parallel/sequential equivalence check FAILED");
            std::process::exit(1);
        }
        return;
    }

    let limits = ExplorationLimits::default();
    // Interleaved minima over many rounds: the container hosts this suite
    // benches on deliver between ~1 and N effective cores unpredictably,
    // and the best window is the only sample where "how fast is each
    // engine" is actually being measured rather than "how throttled was
    // the host at that instant".
    let runs = 9;
    let mut rows: Vec<Row> = Vec::new();

    // The catalog's largest tractable instances: tens of thousands of
    // nodes, the regime `pp_population::verify` switches to within-input
    // parallelism for. One small instance is kept on purpose to document
    // where the sequential path remains the right default.
    let instances: [(&'static str, Protocol, Vec<u64>); 3] = [
        ("example-4.2(n=3)", leaders_n::example_4_2(3), vec![40]),
        (
            "flock-unary(n=5)",
            flock::flock_of_birds_unary(5),
            vec![30, 34],
        ),
        (
            "binary-threshold(n=6)",
            threshold::binary_threshold_with_leader(6),
            vec![30, 40],
        ),
    ];
    for (family, protocol, agent_counts) in instances {
        for agents in agent_counts {
            let initial = protocol.initial_config_with_count(agents);
            let net = protocol.net();
            let sequential = Analysis::new(net)
                .reachability([initial.clone()])
                .limits(limits)
                .run();
            let parallel = Analysis::new(net)
                .reachability([initial.clone()])
                .limits(limits)
                .parallelism(auto)
                .run();
            assert!(
                sequential.identical_to(&parallel),
                "parallel and sequential graphs diverge on {family} at {agents} agents"
            );
            let nodes = sequential.len();
            let bytes_per_node = sequential.bytes_per_node();
            let [seq_ns, par1_ns, par_ns] = min_ns_interleaved(
                runs,
                &mut [
                    // Cold sessions per sample: each timed build includes
                    // the compile, as the historical entry points did.
                    &mut || {
                        Analysis::new(net)
                            .reachability([initial.clone()])
                            .limits(limits)
                            .run()
                            .len()
                    },
                    &mut || {
                        Analysis::new(net)
                            .reachability([initial.clone()])
                            .limits(limits)
                            .parallelism(Parallelism::Parallel(1))
                            .run()
                            .len()
                    },
                    &mut || {
                        Analysis::new(net)
                            .reachability([initial.clone()])
                            .limits(limits)
                            .parallelism(auto)
                            .run()
                            .len()
                    },
                ],
            );
            rows.push(Row {
                family,
                agents,
                nodes,
                bytes_per_node,
                seq_ns,
                par1_ns,
                par_ns,
            });
        }
    }

    let mut table = Table::new([
        "protocol",
        "agents",
        "nodes",
        "B/node",
        "sequential (ms)",
        "pipeline@1 (ms)",
        "parallel (ms)",
        "overhead",
        "speedup",
    ]);
    for row in &rows {
        table.row([
            row.family.to_owned(),
            row.agents.to_string(),
            row.nodes.to_string(),
            row.bytes_per_node.to_string(),
            fmt_f64(row.seq_ns as f64 / 1e6),
            fmt_f64(row.par1_ns as f64 / 1e6),
            fmt_f64(row.par_ns as f64 / 1e6),
            format!(
                "{:+.1}%",
                (row.par1_ns as f64 / row.seq_ns.max(1) as f64 - 1.0) * 100.0
            ),
            fmt_f64(row.seq_ns as f64 / row.par_ns.max(1) as f64),
        ]);
    }
    table.print(&format!(
        "Sequential vs pipelined parallel exploration ({} workers, {host_threads} hardware threads; \
         overhead = Parallel(1) machinery vs sequential)",
        auto.workers()
    ));

    let mut json = String::from("[\n");
    for (i, row) in rows.iter().enumerate() {
        json.push_str(&format!(
            "  {{\"family\": \"{}\", \"agents\": {}, \"nodes\": {}, \"bytes_per_node\": {}, \"seq_ns\": {}, \"par1_ns\": {}, \"par_ns\": {}, \"machinery_overhead\": {:.4}, \"speedup\": {:.3}, \"workers\": {}, \"host_threads\": {}}}{}\n",
            row.family,
            row.agents,
            row.nodes,
            row.bytes_per_node,
            row.seq_ns,
            row.par1_ns,
            row.par_ns,
            row.par1_ns as f64 / row.seq_ns.max(1) as f64 - 1.0,
            row.seq_ns as f64 / row.par_ns.max(1) as f64,
            auto.workers(),
            host_threads,
            if i + 1 == rows.len() { "" } else { "," }
        ));
    }
    json.push_str("]\n");
    let path = "BENCH_parallel_explore.json";
    match std::fs::write(path, &json) {
        Ok(()) => println!("wrote {path}"),
        Err(error) => eprintln!("could not write {path}: {error}"),
    }
}
