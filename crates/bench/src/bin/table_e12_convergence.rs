//! Experiment E12 — empirical convergence of catalog protocols under the
//! uniform random scheduler.

use pp_bench::{fmt_f64, Table};
use pp_multiset::Multiset;
use pp_protocols::{flock, leaders_n, majority};
use pp_sim::ConvergenceExperiment;

fn main() {
    let mut table = Table::new([
        "protocol",
        "input",
        "agents",
        "trials",
        "converged",
        "consensus",
        "mean steps",
        "parallel time (steps/agent)",
    ]);
    let trials = 20usize;
    let max_steps = 5_000_000u64;

    let mut run = |name: &str, protocol: &pp_population::Protocol, input_label: String, initial| {
        let stats = ConvergenceExperiment::new(protocol, &initial)
            .trials(trials)
            .max_steps(max_steps)
            .seed(2022)
            .run();
        table.row([
            name.to_owned(),
            input_label,
            stats.agents.to_string(),
            trials.to_string(),
            stats.converged.to_string(),
            stats.consensus.map_or("—".into(), |c| c.to_string()),
            stats.steps.as_ref().map_or("—".into(), |s| fmt_f64(s.mean)),
            stats.parallel_time().map_or("—".into(), fmt_f64),
        ]);
    };

    for agents in [10u64, 50, 200] {
        let protocol = leaders_n::example_4_2(2);
        run(
            "example-4.2(n=2)",
            &protocol,
            format!("{agents}·i"),
            protocol.initial_config_with_count(agents),
        );
    }
    for agents in [10u64, 50, 200] {
        let protocol = flock::flock_of_birds_unary(5);
        run(
            "flock-unary(n=5)",
            &protocol,
            format!("{agents}·a1"),
            protocol.initial_config_with_count(agents),
        );
    }
    for agents in [16u64, 64, 256] {
        let protocol = flock::flock_of_birds_doubling(3);
        run(
            "flock-doubling(n=8)",
            &protocol,
            format!("{agents}·v0"),
            protocol.initial_config_with_count(agents),
        );
    }
    for (a, b) in [(30u64, 20u64), (20, 30), (25, 25)] {
        let protocol = majority::majority();
        let a_id = protocol.state_id("A").unwrap();
        let b_id = protocol.state_id("B").unwrap();
        run(
            "majority",
            &protocol,
            format!("{a}·A + {b}·B"),
            Multiset::from_pairs([(a_id, a), (b_id, b)]),
        );
    }

    table.print("E12 — convergence under the uniform random scheduler");
    println!(
        "Context (Section 2 semantics): stable computation is a reachability property over fair \
         executions; the random scheduler realizes fairness almost surely and the measured \
         consensus always matches the predicate value."
    );
}
