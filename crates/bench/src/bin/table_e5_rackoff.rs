//! Experiment E5 — Lemma 5.3 (Rackoff): shortest covering words vs the bound.

use pp_bench::{fmt_f64, Table};
use pp_multiset::Multiset;
use pp_petri::rackoff::covering_length_bound;
use pp_petri::{Analysis, ExplorationLimits};
use pp_protocols::{flock, leaders_n, threshold};

fn main() {
    let mut table = Table::new([
        "net",
        "|P|",
        "start",
        "target",
        "coverable",
        "shortest word",
        "log10(Rackoff bound)",
    ]);
    let limits = ExplorationLimits::default();

    // Catalog nets, described by (name, net, start configuration, target, label).
    let e42 = leaders_n::example_4_2(2);
    let flock4 = flock::flock_of_birds_unary(4);
    let bin6 = threshold::binary_threshold_with_leader(6);

    let mut add_case = |name: &str,
                        net: &pp_petri::PetriNet<pp_population::StateId>,
                        start: Multiset<pp_population::StateId>,
                        target: Multiset<pp_population::StateId>,
                        start_label: String,
                        target_label: String| {
        // One session per case: the backward oracle and the forward word
        // search share a single compile of the net.
        let mut analysis = Analysis::new(net);
        let coverable = analysis
            .coverability(target.clone())
            .run()
            .is_coverable_from(&start);
        let word = analysis
            .covering_word(start, target.clone())
            .limits(limits)
            .run()
            .into_word();
        table.row([
            name.to_owned(),
            net.num_places().to_string(),
            start_label,
            target_label,
            if coverable { "yes" } else { "no" }.to_owned(),
            word.map_or("—".to_owned(), |w| w.len().to_string()),
            fmt_f64(covering_length_bound(net, &target).approx_log10()),
        ]);
    };

    // Example 4.2: covering the accepting flags from various inputs.
    let id = |p: &pp_population::Protocol, name: &str| p.state_id(name).unwrap();
    add_case(
        "example-4.2(n=2)",
        e42.net(),
        e42.initial_config_with_count(3),
        Multiset::from_pairs([(id(&e42, "p"), 1u64), (id(&e42, "q"), 1)]),
        "ρ_L + 3·i".into(),
        "p + q".into(),
    );
    add_case(
        "example-4.2(n=2)",
        e42.net(),
        e42.initial_config_with_count(1),
        Multiset::from_pairs([(id(&e42, "p"), 2u64)]),
        "ρ_L + 1·i".into(),
        "2·p".into(),
    );
    // Flock of birds: covering the saturated state.
    add_case(
        "flock-unary(n=4)",
        flock4.net(),
        flock4.initial_config_with_count(5),
        Multiset::unit(id(&flock4, "a4")),
        "5·a1".into(),
        "a4".into(),
    );
    add_case(
        "flock-unary(n=4)",
        flock4.net(),
        flock4.initial_config_with_count(3),
        Multiset::unit(id(&flock4, "a4")),
        "3·a1".into(),
        "a4".into(),
    );
    // Binary threshold: covering the accepting leader state.
    let accept = bin6
        .states()
        .find(|s| bin6.output(*s) == pp_population::Output::One)
        .unwrap();
    add_case(
        "binary-threshold(n=6)",
        bin6.net(),
        bin6.initial_config_with_count(7),
        Multiset::unit(accept),
        "L0 + 7·v0".into(),
        "accept".into(),
    );
    add_case(
        "binary-threshold(n=6)",
        bin6.net(),
        bin6.initial_config_with_count(5),
        Multiset::unit(accept),
        "L0 + 5·v0".into(),
        "accept".into(),
    );

    table.print("E5 — shortest covering words vs the Rackoff bound of Lemma 5.3");
    println!(
        "Paper claim (Lemma 5.3): whenever a configuration is coverable, a covering word of \
         length at most (‖ρ‖∞ + ‖T‖∞)^(|P|^|P|) exists; actual shortest words are tiny compared \
         to the bound."
    );
}
