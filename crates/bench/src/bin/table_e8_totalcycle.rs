//! Experiment E8 — Lemma 7.2: total cycles of control-state Petri nets.

use pp_bench::Table;
use pp_petri::ExplorationLimits;
use pp_protocols::{flock, modulo};
use pp_statecomplexity::analyze_protocol;

fn main() {
    let mut table = Table::new([
        "protocol",
        "control states |S|",
        "edges |E|",
        "strongly connected",
        "total cycle length",
        "Lemma 7.2 bound |E|·|S|",
    ]);
    let limits = ExplorationLimits::with_max_configurations(800);
    let entries = [
        ("modulo(m=2,r=0)", modulo::modulo_with_leader(2, 0)),
        ("modulo(m=3,r=1)", modulo::modulo_with_leader(3, 1)),
        ("modulo(m=4,r=2)", modulo::modulo_with_leader(4, 2)),
        ("flock-unary(n=3)", flock::flock_of_birds_unary(3)),
        ("flock-doubling(k=2)", flock::flock_of_birds_doubling(2)),
    ];
    for (name, protocol) in entries {
        let report = analyze_protocol(&protocol, &limits);
        let states = report.control_states;
        let edges = report.control_edges;
        let bound = match (states, edges) {
            (Some(s), Some(e)) => (s * e).to_string(),
            _ => "—".to_owned(),
        };
        table.row([
            name.to_owned(),
            states.map_or("—".into(), |v| v.to_string()),
            edges.map_or("—".into(), |v| v.to_string()),
            report.strongly_connected.map_or("—".into(), |v| {
                if v {
                    "yes".into()
                } else {
                    "no".to_string()
                }
            }),
            report
                .total_cycle_length
                .map_or("—".into(), |v| v.to_string()),
            bound,
        ]);
    }
    table.print("E8 — Lemma 7.2: total cycles within the |E|·|S| bound");
    println!(
        "Paper claim (Lemma 7.2): every strongly connected control net has a total cycle of \
         length at most |E|·|S|; measured cycles respect the bound."
    );
}
