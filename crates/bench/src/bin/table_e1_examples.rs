//! Experiment E1 — the paper's Examples 4.1 and 4.2, verified exhaustively.
//!
//! For each threshold `n`, both example protocols are built and the stable
//! computation of `(i ≥ n)` is verified exactly on every input `0..=n+3`.

use pp_bench::Table;
use pp_petri::ExplorationLimits;
use pp_population::verify::verify_counting_inputs;
use pp_population::Predicate;
use pp_protocols::{leaders_n, width_n};

fn main() {
    let mut table = Table::new([
        "protocol",
        "n",
        "states",
        "width",
        "leaders",
        "inputs checked",
        "stably computes (i ≥ n)",
    ]);
    let limits = ExplorationLimits::default();
    for n in 1..=4u64 {
        for (name, protocol) in [
            ("example-4.1", width_n::example_4_1(n)),
            ("example-4.2", leaders_n::example_4_2(n)),
        ] {
            let report =
                verify_counting_inputs(&protocol, &Predicate::counting("i", n), n + 3, &limits);
            table.row([
                name.to_owned(),
                n.to_string(),
                protocol.num_states().to_string(),
                protocol.width().to_string(),
                protocol.num_leaders().to_string(),
                format!("0..={}", n + 3),
                if report.all_correct() { "yes" } else { "NO" }.to_owned(),
            ]);
        }
    }
    table.print("E1 — Examples 4.1 and 4.2 stably compute the counting predicate");
    println!(
        "Paper claim (Section 4): both protocols stably compute (i ≥ n); state count is \
         constant while width (Ex 4.1) or leaders (Ex 4.2) grow with n."
    );
}
