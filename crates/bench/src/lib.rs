//! Shared helpers for the experiment tables and Criterion benches.
//!
//! The experiment index lives in `DESIGN.md`; every experiment `E1`–`E12` has
//! a binary in `src/bin/` that prints its table to stdout using the small
//! formatting helpers of this crate, the engine ablations
//! (`bench_sparse_dense`, `bench_parallel_explore`, `bench_session_reuse`,
//! `bench_batch_throughput` — E12b–E15) additionally write gated
//! `BENCH_*.json` files, and the timing-sensitive pipelines have Criterion
//! benches under `benches/`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// A minimal plain-text table printer (fixed-width columns, Markdown-style).
#[derive(Debug, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    #[must_use]
    pub fn new<S: Into<String>, I: IntoIterator<Item = S>>(header: I) -> Self {
        Table {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends one row (must have as many cells as the header).
    ///
    /// # Panics
    ///
    /// Panics if the number of cells differs from the number of columns.
    pub fn row<S: Into<String>, I: IntoIterator<Item = S>>(&mut self, cells: I) -> &mut Self {
        let row: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(row.len(), self.header.len(), "row width must match header");
        self.rows.push(row);
        self
    }

    /// Number of data rows.
    #[must_use]
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Returns `true` if the table has no data rows.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table.
    #[must_use]
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.chars().count()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.chars().count());
            }
        }
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::from("|");
            for (cell, width) in cells.iter().zip(widths) {
                let pad = width - cell.chars().count();
                line.push(' ');
                line.push_str(cell);
                line.push_str(&" ".repeat(pad + 1));
                line.push('|');
            }
            line
        };
        let mut out = String::new();
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('\n');
        out.push('|');
        for width in &widths {
            out.push_str(&"-".repeat(width + 2));
            out.push('|');
        }
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Prints the rendered table with a title line.
    pub fn print(&self, title: &str) {
        println!("\n## {title}\n");
        println!("{}", self.render());
    }
}

/// Formats an `f64` compactly (three decimals, scientific for extremes).
#[must_use]
pub fn fmt_f64(value: f64) -> String {
    if value.is_infinite() {
        return "inf".to_owned();
    }
    if value == 0.0 {
        return "0".to_owned();
    }
    if value.abs() >= 1e6 || value.abs() < 1e-3 {
        format!("{value:.3e}")
    } else {
        format!("{value:.3}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_rendering() {
        let mut t = Table::new(["n", "states"]);
        t.row(["8", "5"]).row(["16", "6"]);
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
        let rendered = t.render();
        assert!(rendered.contains("| n  | states |"));
        assert!(rendered.contains("| 16 | 6      |"));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_row_panics() {
        let mut t = Table::new(["a"]);
        t.row(["1", "2"]);
    }

    #[test]
    fn float_formatting() {
        assert_eq!(fmt_f64(0.0), "0");
        assert_eq!(fmt_f64(1.5), "1.500");
        assert_eq!(fmt_f64(f64::INFINITY), "inf");
        assert_eq!(fmt_f64(2.5e10), "2.500e10");
    }
}
